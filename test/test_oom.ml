(* The overload lifeboat: OOM victim selection, audit-clean reaps,
   the kernel reserve pool, whole-process swapout, and the IPC
   backpressure a parked or reaped receiver exerts on its senders.

   Every test is a functor over VM_SYS and runs against both kernels:
   the policy lives above the VM interface, so the two systems must
   escalate through the same ladder and pick the same victims. *)

module Vt = Vmiface.Vmtypes
module Machine = Vmiface.Machine
module Overload = Oslayer.Overload
module P = Oslayer.Programs

module Oom (V : Vmiface.Vm_sig.VM_SYS) = struct
  module Ps = Oslayer.Procsim.Make (V)

  let boot ?(ram = 192) ?(swap = 256) () =
    let config =
      { Machine.default_config with Machine.ram_pages = ram; swap_pages = swap }
    in
    let sys = V.boot ~config () in
    (sys, V.machine sys)

  let spawn_touched sys mgr ~pages =
    let proc = Ps.spawn sys P.cat in
    Ps.register mgr proc;
    if pages > 0 then begin
      let vpn =
        V.mmap sys proc.Ps.vm ~npages:pages ~prot:Pmap.Prot.rw
          ~share:Vt.Private Vt.Zero
      in
      V.access_range sys proc.Ps.vm ~vpn ~npages:pages Vt.Write
    end;
    proc

  (* Drive a registered "current" process into sustained shortage until
     the policy has reaped at least [until_kills] victims (or the
     current process itself dies).  Returns true if the current process
     was killed. *)
  let squeeze sys mgr consumer ~vpn ~npages ~until_kills ~kills =
    let killed = ref false in
    let rounds = ref 0 in
    while
      (not !killed) && List.length !kills < until_kills && !rounds < 12
    do
      incr rounds;
      try
        Ps.run_as mgr consumer (fun () ->
            V.access_range sys consumer.Ps.vm ~vpn ~npages Vt.Write)
      with
      | Overload.Killed _ -> killed := true
      | Physmem.Out_of_pages | Vt.Segv { error = Vt.Out_of_memory; _ } -> ()
    done;
    !killed

  (* Stage 1 parks idle processes; stage 2 must then reap the process
     whose badness score is highest — the big touched footprint, not the
     young small ones — identically under both kernels. *)
  let test_victim_determinism () =
    (* Swap smaller than the combined anonymous demand: paging alone
       cannot meet it, so the ladder has to escalate all the way. *)
    let sys, mach = boot ~swap:96 () in
    let st = mach.Machine.stats in
    let mgr = Ps.new_mgr sys in
    Ps.install mgr;
    let kills = ref [] in
    Ps.set_on_kill mgr (fun proc ~badness ->
        Alcotest.(check bool) "badness non-negative" true (badness >= 0);
        kills := proc.Ps.pid :: !kills);
    let hog = spawn_touched sys mgr ~pages:96 in
    let small1 = spawn_touched sys mgr ~pages:8 in
    let small2 = spawn_touched sys mgr ~pages:8 in
    let consumer = Ps.spawn sys P.cat in
    Ps.register mgr consumer;
    let npages = 256 in
    let vpn =
      V.mmap sys consumer.Ps.vm ~npages ~prot:Pmap.Prot.rw ~share:Vt.Private
        Vt.Zero
    in
    ignore (squeeze sys mgr consumer ~vpn ~npages ~until_kills:1 ~kills : bool);
    (match List.rev !kills with
    | first :: _ ->
        Alcotest.(check int) "worst-badness victim reaped first" hog.Ps.pid
          first
    | [] -> Alcotest.fail "pressure never forced a reap");
    Alcotest.(check bool) "swapout rung ran before the reap" true
      (st.Sim.Stats.proc_swapouts >= 1);
    Alcotest.(check bool) "small processes outlived the hog" true
      ((not small1.Ps.dead) || not small2.Ps.dead);
    Ps.uninstall mgr

  (* Reaps happen from inside a failing fault's allocation; the teardown
     must go through the ordinary exit machinery so every kernel
     invariant the auditor walks still holds afterwards. *)
  let test_reap_keeps_audit_clean () =
    let sys, mach = boot ~swap:96 () in
    let st = mach.Machine.stats in
    let mgr = Ps.new_mgr sys in
    Ps.install mgr;
    let kills = ref [] in
    Ps.set_on_kill mgr (fun proc ~badness:_ ->
        kills := proc.Ps.pid :: !kills;
        (* Mid-fault: the victim is gone before the faulting allocation
           retries, and the machine must already be consistent. *)
        V.audit sys);
    ignore (spawn_touched sys mgr ~pages:48 : Ps.proc);
    ignore (spawn_touched sys mgr ~pages:48 : Ps.proc);
    let consumer = Ps.spawn sys P.cat in
    Ps.register mgr consumer;
    let npages = 256 in
    let vpn =
      V.mmap sys consumer.Ps.vm ~npages ~prot:Pmap.Prot.rw ~share:Vt.Private
        Vt.Zero
    in
    ignore (squeeze sys mgr consumer ~vpn ~npages ~until_kills:2 ~kills : bool);
    Alcotest.(check bool) "at least one victim reaped" true
      (st.Sim.Stats.oom_kills >= 1);
    V.audit sys;
    (* Everything left tears down cleanly too. *)
    List.iter
      (fun p -> if not p.Ps.dead then Ps.exit_proc sys p)
      (Ps.live mgr);
    V.audit sys;
    Alcotest.(check int) "no leaked anon memory" 0 (V.leaked_pages sys);
    Ps.uninstall mgr

  (* With ordinary allocations refused at the floor, a privileged
     (pagedaemon-style) allocation must still succeed out of the kernel
     reserve — that is what keeps pageout I/O alive during the shortage
     that needs it most. *)
  let test_reserve_keeps_daemon_alive () =
    let sys, mach = boot ~ram:96 ~swap:48 () in
    let st = mach.Machine.stats in
    let pm = mach.Machine.physmem in
    let vm = V.new_vmspace sys in
    let npages = 192 in
    let vpn =
      V.mmap sys vm ~npages ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero
    in
    (try
       for _ = 1 to 4 do
         V.access_range sys vm ~vpn ~npages Vt.Write
       done;
       Alcotest.fail "expected Out_of_pages with no overload manager"
     with
    | Physmem.Out_of_pages | Vt.Segv { error = Vt.Out_of_memory; _ } -> ());
    let free = Physmem.free_count pm in
    let reserve = Physmem.reserve pm in
    Alcotest.(check bool) "ordinary allocs stopped at the floor" true
      (free <= reserve);
    Alcotest.(check bool) "the floor is not empty" true (free > 0);
    let before = st.Sim.Stats.reserve_grabs in
    let page =
      Physmem.alloc pm ~privileged:true ~owner:Physmem.Page.No_owner ~offset:0
        ()
    in
    Alcotest.(check bool) "privileged alloc dug into the reserve" true
      (st.Sim.Stats.reserve_grabs > before);
    Physmem.free_page pm page

  (* Whole-process swapout parks the process and releases its memory to
     the pagedaemon; the first syscall after swapin must see every byte
     it wrote before, with both transitions counted. *)
  let test_swapout_round_trip () =
    let sys, mach = boot ~ram:192 ~swap:512 () in
    let st = mach.Machine.stats in
    let ps = Machine.page_size mach in
    let mgr = Ps.new_mgr sys in
    let parked = Ps.spawn sys P.cat in
    Ps.register mgr parked;
    let npages = 16 in
    let vpn =
      V.mmap sys parked.Ps.vm ~npages ~prot:Pmap.Prot.rw ~share:Vt.Private
        Vt.Zero
    in
    let tag i = Printf.sprintf "page-%02d-tag" i in
    for i = 0 to npages - 1 do
      V.write_bytes sys parked.Ps.vm
        ~addr:((vpn + i) * ps)
        (Bytes.of_string (tag i))
    done;
    let so0 = st.Sim.Stats.proc_swapouts and si0 = st.Sim.Stats.proc_swapins in
    let evicted = Ps.swapout_whole mgr parked in
    Alcotest.(check bool) "resident set evicted" true (evicted >= npages);
    Alcotest.(check bool) "marked swapped" true parked.Ps.swapped;
    Alcotest.(check int) "swapout counted" (so0 + 1)
      st.Sim.Stats.proc_swapouts;
    (* Pressure from another space pushes the parked pages all the way
       out to swap before the victim runs again. *)
    let other = V.new_vmspace sys in
    let ovpn =
      V.mmap sys other ~npages:256 ~prot:Pmap.Prot.rw ~share:Vt.Private
        Vt.Zero
    in
    V.access_range sys other ~vpn:ovpn ~npages:256 Vt.Write;
    (* First syscall: run_as swaps the process back in, faults page the
       working set back, and the contents must have survived the trip. *)
    Ps.run_as mgr parked (fun () ->
        for i = 0 to npages - 1 do
          let got =
            V.read_bytes sys parked.Ps.vm
              ~addr:((vpn + i) * ps)
              ~len:(String.length (tag i))
          in
          Alcotest.(check string)
            (Printf.sprintf "page %d contents survived" i)
            (tag i) (Bytes.to_string got)
        done);
    Alcotest.(check bool) "back in core" true (not parked.Ps.swapped);
    Alcotest.(check int) "swapin counted" (si0 + 1) st.Sim.Stats.proc_swapins;
    V.audit sys

  (* Senders see the receiver's state as typed backpressure: a parked
     receiver with a full queue times the send out, a reaped receiver
     fails it immediately — no exception, no lost kernel state. *)
  let test_ipc_backpressure () =
    let sys, mach = boot () in
    let st = mach.Machine.stats in
    let ps = Machine.page_size mach in
    let mgr = Ps.new_mgr sys in
    let sender = Ps.spawn sys P.cat in
    let receiver = Ps.spawn sys P.cat in
    Ps.register mgr sender;
    Ps.register mgr receiver;
    let ch = Ps.pipe_owned mgr ~owner:receiver ~cap_bytes:ps () in
    let addr = sender.Ps.heap.Ps.seg_vpn * ps in
    V.write_bytes sys sender.Ps.vm ~addr (Bytes.make ps 'm');
    let send len =
      Ps.send_r mgr sender ch ~policy:Ipc.Copy ~addr ~len
    in
    (match send (ps / 2) with
    | Ok n -> Alcotest.(check int) "live receiver accepts" (ps / 2) n
    | Error _ -> Alcotest.fail "send to live receiver failed");
    (* Park the receiver: sends still land while there is capacity... *)
    ignore (Ps.swapout_whole mgr receiver : int);
    (match send (ps / 2) with
    | Ok n -> Alcotest.(check int) "capacity still drains" (ps / 2) n
    | Error _ -> Alcotest.fail "send under capacity must not time out");
    (* ...but a full queue cannot drain before the deadline. *)
    (match send (ps / 2) with
    | Error Ipc.Timed_out -> ()
    | Ok _ -> Alcotest.fail "expected Timed_out on full queue"
    | Error Ipc.Peer_dead -> Alcotest.fail "receiver is parked, not dead");
    (* Reap the receiver: every later send fails fast and is typed. *)
    let k0 = st.Sim.Stats.oom_kills in
    Ps.reap mgr receiver;
    Alcotest.(check int) "reap counted" (k0 + 1) st.Sim.Stats.oom_kills;
    (match send (ps / 2) with
    | Error Ipc.Peer_dead -> ()
    | Ok _ | Error Ipc.Timed_out ->
        Alcotest.fail "expected Peer_dead after the reap");
    V.audit sys

  let tests =
    [
      Alcotest.test_case "victim determinism" `Quick test_victim_determinism;
      Alcotest.test_case "reap keeps audit clean" `Quick
        test_reap_keeps_audit_clean;
      Alcotest.test_case "reserve keeps daemon alive" `Quick
        test_reserve_keeps_daemon_alive;
      Alcotest.test_case "swapout round trip" `Quick test_swapout_round_trip;
      Alcotest.test_case "ipc backpressure" `Quick test_ipc_backpressure;
    ]
end

module Oom_uvm = Oom (Uvm.Sys)
module Oom_bsd = Oom (Bsdvm.Sys)

let () =
  Alcotest.run "oom"
    [ ("uvm", Oom_uvm.tests); ("bsd", Oom_bsd.tests) ]

(** uvm_sim — reproduce the tables and figures of "The UVM Virtual Memory
    System" (Cranor & Parulkar, USENIX 1999) on the simulated substrate.

    Each subcommand regenerates one paper artifact, comparing UVM with the
    BSD VM baseline on an identical simulated machine.

    Every experiment can be run on failing hardware: the fault-injection
    options install a default fault plan that every machine booted by the
    experiment inherits (a fresh, identically-seeded plan per boot, so
    UVM and BSD VM face the same error sequence). *)

open Cmdliner

let experiments =
  [
    ("table1", "Table 1: allocated map entries", Experiments.Table1.print);
    ("table2", "Table 2: page fault counts", Experiments.Table2.print);
    ("table3", "Table 3: single-page map-fault-unmap time", Experiments.Table3.print);
    ("fig2", "Figure 2: object cache effect on file access", Experiments.Fig2.print);
    ("fig5", "Figure 5: anonymous memory allocation time", Experiments.Fig5.print);
    ("fig6", "Figure 6: fork+wait overhead", Experiments.Fig6.print);
    ("datamove", "Section 7: loanout/transfer/mexp vs copy", Experiments.Datamove.print);
    ("swapleak", "Section 5.3: swap leak demonstration", Experiments.Swapleak.print);
  ]

(* -- fault-injection options ----------------------------------------- *)

let read_error_rate =
  let doc = "Fail each disk read with probability $(docv) (transient unless \
             $(b,--permanent))." in
  Arg.(value & opt float 0.0 & info [ "read-error-rate" ] ~docv:"RATE" ~doc)

let write_error_rate =
  let doc = "Fail each disk write with probability $(docv) (transient unless \
             $(b,--permanent))." in
  Arg.(value & opt float 0.0 & info [ "write-error-rate" ] ~docv:"RATE" ~doc)

let permanent =
  let doc = "Rate-injected errors are permanent (bad media) instead of \
             transient." in
  Arg.(value & flag & info [ "permanent" ] ~doc)

let bad_slots =
  let doc = "Treat swap slot $(docv) as bad media: every write to it fails \
             permanently.  Repeatable." in
  Arg.(value & opt_all int [] & info [ "bad-slot" ] ~docv:"SLOT" ~doc)

let fault_seed =
  let doc = "Seed for the fault plan's random number generator." in
  Arg.(value & opt int 0xFA17 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let install_faults read_rate write_rate permanent bad fault_seed =
  let check_rate name r =
    if r < 0.0 || r > 1.0 then begin
      Printf.eprintf "uvm_sim: --%s must be in [0,1] (got %g)\n" name r;
      exit 2
    end
  in
  check_rate "read-error-rate" read_rate;
  check_rate "write-error-rate" write_rate;
  List.iter
    (fun slot ->
      if slot < 1 then begin
        Printf.eprintf "uvm_sim: --bad-slot must be >= 1 (got %d)\n" slot;
        exit 2
      end)
    bad;
  if read_rate > 0.0 || write_rate > 0.0 || bad <> [] then
    Vmiface.Machine.set_default_fault_plan
      (Some
         (fun () ->
           let plan =
             Sim.Fault_plan.create ~seed:fault_seed ~read_error_rate:read_rate
               ~write_error_rate:write_rate
               ~rate_severity:
                 (if permanent then Sim.Fault_plan.Permanent
                  else Sim.Fault_plan.Transient)
               ()
           in
           List.iter
             (fun slot ->
               Sim.Fault_plan.fail_op plan ~slot Sim.Fault_plan.Write
                 Sim.Fault_plan.Permanent)
             bad;
           plan))

(* -- observability options --------------------------------------------- *)

let trace_out =
  let doc = "Write a Chrome trace-event JSON file of every traced machine \
             to $(docv) (open in Perfetto or chrome://tracing).  Implies \
             event collection." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_buf =
  let doc = "Per-subsystem event ring capacity: each traced machine keeps \
             the most recent $(docv) events of each subsystem." in
  Arg.(value & opt int 65536 & info [ "trace-buf" ] ~docv:"N" ~doc)

let stats_flag =
  let doc = "After the experiment, print the full non-zero counter table \
             and latency percentiles of every system it booted." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_out =
  let doc = "Write a JSON snapshot of counters and latency histograms to \
             $(docv)." in
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)

let report_out =
  let doc = "Write the comparative efficacy report \
             (schema uvm-sim-report/1: fault-ahead hit/waste per madvise \
             mode, pageout cluster distributions, residency percentiles, \
             map-entry census) of every system the experiment booted to \
             $(docv)." in
  Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)

let spans_out =
  let doc = "Write the causal span trees (schema uvm-sim-spans/1: every \
             finished span with its trace/parent ids, plus any still-open \
             stack) of every traced machine to $(docv).  Implies event \
             collection." in
  Arg.(value & opt (some string) None & info [ "spans-out" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc = "Write the vmstat-style time-series (schema uvm-sim-metrics/1: \
             periodic gauge/counter samples and watchdog warnings) of every \
             traced machine to $(docv).  Implies event collection." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let lockstat_out =
  let doc = "Write the lock observatory (schema uvm-sim-lockstat/1: \
             per-class hold-time histograms split by read/write mode and \
             by holding subsystem, the observed lock-order graph with any \
             cycles, and the would-be contention projection) of every \
             traced machine to $(docv).  Implies event collection." in
  Arg.(value & opt (some string) None
       & info [ "lockstat-out" ] ~docv:"FILE" ~doc)

let with_file name f =
  let oc = open_out name in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let run_with_observability trace_out trace_buf stats stats_out report_out
    spans_out metrics_out lockstat_out f =
  if trace_buf < 1 then begin
    Printf.eprintf "uvm_sim: --trace-buf must be >= 1 (got %d)\n" trace_buf;
    exit 2
  end;
  let observing =
    trace_out <> None || stats_out <> None || report_out <> None
    || spans_out <> None || metrics_out <> None || lockstat_out <> None
    || stats
  in
  if observing then Vmiface.Machine.set_default_trace (Some trace_buf);
  f ();
  if observing then begin
    let sources = Vmiface.Machine.traced () in
    if stats then Sim.Trace_export.print_stats sources;
    (match trace_out with
    | Some file ->
        let buf = Buffer.create 65536 in
        Sim.Trace_export.chrome_json buf sources;
        with_file file (fun oc -> Buffer.output_buffer oc buf);
        Printf.printf "trace written to %s (%d events)\n" file
          (List.fold_left (fun n s -> n + Sim.Hist.retained s.Sim.Trace_export.hist)
             0 sources)
    | None -> ());
    (match stats_out with
    | Some file ->
        let buf = Buffer.create 4096 in
        Sim.Trace_export.snapshot_json buf sources;
        with_file file (fun oc -> Buffer.output_buffer oc buf)
    | None -> ());
    (match report_out with
    | Some file ->
        let buf = Buffer.create 8192 in
        Sim.Trace_export.report_json buf sources;
        with_file file (fun oc -> Buffer.output_buffer oc buf)
    | None -> ());
    (match spans_out with
    | Some file ->
        let buf = Buffer.create 16384 in
        Sim.Trace_export.spans_json buf sources;
        with_file file (fun oc -> Buffer.output_buffer oc buf)
    | None -> ());
    (match metrics_out with
    | Some file ->
        let buf = Buffer.create 16384 in
        Sim.Trace_export.metrics_json buf sources;
        with_file file (fun oc -> Buffer.output_buffer oc buf)
    | None -> ());
    (match lockstat_out with
    | Some file ->
        let buf = Buffer.create 16384 in
        Sim.Trace_export.lockstat_json buf sources;
        with_file file (fun oc -> Buffer.output_buffer oc buf)
    | None -> ());
    Vmiface.Machine.reset_traced ()
  end

let with_faults f =
  Term.(
    const (fun rr wr perm bad seed tout tbuf st stout rout spout mout lout () ->
        install_faults rr wr perm bad seed;
        run_with_observability tout tbuf st stout rout spout mout lout f)
    $ read_error_rate $ write_error_rate $ permanent $ bad_slots $ fault_seed
    $ trace_out $ trace_buf $ stats_flag $ stats_out $ report_out $ spans_out
    $ metrics_out $ lockstat_out $ const ())

(* Torture, serve and soak manage their own runs; this wraps them with
   just the lock-observatory export (machines boot traced while the flag
   is set, and the registry of every traced machine is written after). *)
let with_lockstat lockstat_out f =
  (match lockstat_out with
  | Some _ -> Vmiface.Machine.set_default_trace (Some 65536)
  | None -> ());
  let r = f () in
  (match lockstat_out with
  | Some file ->
      let sources = Vmiface.Machine.traced () in
      let buf = Buffer.create 16384 in
      Sim.Trace_export.lockstat_json buf sources;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "lockstat written to %s\n" file;
      Vmiface.Machine.reset_traced ()
  | None -> ());
  r

(* -- torture ----------------------------------------------------------- *)

let run_torture seed ops audit_every faults shrink artifact_dir corrupt
    corrupt_at ram_pages swap_pages tiers =
  let corrupt =
    match corrupt with
    | None -> None
    | Some name -> (
        match Oslayer.Torture.corruption_of_string name with
        | Some c -> Some (corrupt_at, c)
        | None ->
            Printf.eprintf
              "uvm_sim: unknown --corrupt kind %S (expected leak-swap-slot, \
               overref-anon, queue-double-insert, leak-loan or \
               leak-swapcache)\n"
              name;
            exit 2)
  in
  let cfg =
    {
      Oslayer.Torture.default_cfg with
      seed;
      nops = ops;
      audit_every;
      faults;
      shrink;
      artifact_dir = Some artifact_dir;
      corrupt;
      ram_pages;
      swap_pages;
      tiers;
    }
  in
  Printf.printf
    "torture: seed=%d ops=%d audit-every=%d faults=%s ram=%d swap=%d \
     tiers=%s\n%!"
    seed ops audit_every
    (if faults then "on" else "off")
    ram_pages swap_pages
    (if tiers then "fast+slow" else "single");
  let r = Oslayer.Torture.run cfg in
  match r.Oslayer.Torture.r_bug with
  | None ->
      Printf.printf
        "torture: OK — %d ops, all audits clean, UVM and BSD VM agree\n"
        (List.length r.Oslayer.Torture.r_trace);
      false
  | Some bug ->
      Printf.printf "torture: FAILED\n  %s\n"
        (Oslayer.Torture.string_of_bug bug);
      (match r.Oslayer.Torture.r_minimal with
      | Some ops ->
          Printf.printf "  minimal repro (%d ops):\n" (List.length ops);
          List.iter
            (fun (i, op) ->
              Printf.printf "    [%d] %s\n" i (Oslayer.Torture.op_to_string op))
            ops
      | None -> ());
      (match r.Oslayer.Torture.r_artifacts with
      | Some dir -> Printf.printf "  artifacts written to %s/\n" dir
      | None -> ());
      true

let torture_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the op generator and both machines.")
  in
  let ops =
    Arg.(value & opt int 20000 & info [ "ops" ] ~docv:"N"
           ~doc:"Number of operations to generate.")
  in
  let audit_every =
    Arg.(value & opt int 100 & info [ "audit-every" ] ~docv:"K"
           ~doc:"Run both kernels' invariant auditors every $(docv) ops.")
  in
  let faults =
    Arg.(value & flag & info [ "faults" ]
           ~doc:"Inject transient disk I/O errors (rate 0.005). Outcome \
                 comparison is disabled; the invariant audits remain the \
                 oracle.")
  in
  let shrink =
    Arg.(value & flag & info [ "shrink" ]
           ~doc:"On failure, delta-debug the trace to a minimal failing \
                 sequence (replays the run many times).")
  in
  let artifact_dir =
    Arg.(value & opt string "artifacts/torture" & info [ "artifact-dir" ]
           ~docv:"DIR"
           ~doc:"Directory for crash artifacts (op trace, failure, event \
                 ring, stats).")
  in
  let corrupt =
    Arg.(value & opt (some string) None & info [ "corrupt" ] ~docv:"KIND"
           ~doc:"Deliberately corrupt kernel state mid-run to exercise the \
                 auditor: leak-swap-slot, overref-anon, queue-double-insert, \
                 leak-loan or leak-swapcache.")
  in
  let corrupt_at =
    Arg.(value & opt int 0 & info [ "corrupt-at" ] ~docv:"N"
           ~doc:"Apply the corruption at op index $(docv).")
  in
  let ram_pages =
    Arg.(value & opt int 256 & info [ "ram-pages" ] ~docv:"N"
           ~doc:"Simulated RAM size in pages (small forces paging).")
  in
  let swap_pages =
    Arg.(value & opt int 2048 & info [ "swap-pages" ] ~docv:"N"
           ~doc:"Simulated swap size in slots.")
  in
  let tiers =
    Arg.(value & flag & info [ "tiers" ]
           ~doc:"Boot both kernels on a fast+slow swap-tier pair (same \
                 total slot budget) so the audits cover cross-tier \
                 accounting and the swapcache.")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:"Differential torture test: one seeded op sequence against both \
             VM systems with periodic invariant audits")
    Term.(
      const (fun seed ops audit_every faults shrink artifact_dir corrupt
                 corrupt_at ram_pages swap_pages tiers lout ->
          let failed =
            with_lockstat lout (fun () ->
                run_torture seed ops audit_every faults shrink artifact_dir
                  corrupt corrupt_at ram_pages swap_pages tiers)
          in
          if failed then Stdlib.exit 1)
      $ seed $ ops $ audit_every $ faults $ shrink $ artifact_dir $ corrupt
      $ corrupt_at $ ram_pages $ swap_pages $ tiers $ lockstat_out)

(* -- report ------------------------------------------------------------ *)

let run_report quick out =
  let sources = Experiments.Effreport.run ~quick () in
  Sim.Trace_export.print_report sources;
  match out with
  | Some file ->
      let buf = Buffer.create 8192 in
      Sim.Trace_export.report_json buf sources;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "report written to %s\n" file
  | None -> ()

let report_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Quarter-size workload (CI smoke test).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Also write the uvm-sim-report/1 JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Comparative efficacy report: the page-lifecycle ledger's \
             derived analytics (fault-ahead hit/waste per madvise mode, \
             pageout cluster size/contiguity, swap reassignment distances, \
             residency and inter-fault histograms, map-entry census) for \
             UVM and BSD VM over one mixed paging workload")
    Term.(
      const (fun rr wr perm bad seed quick out ->
          install_faults rr wr perm bad seed;
          run_report quick out)
      $ read_error_rate $ write_error_rate $ permanent $ bad_slots
      $ fault_seed $ quick $ out)

(* -- serve ------------------------------------------------------------- *)

let run_serve quick out =
  let rows = Experiments.Serve.run ~quick () in
  Experiments.Serve.print_result rows;
  match out with
  | Some file ->
      let buf = Buffer.create 4096 in
      Experiments.Serve.json buf rows;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "serve results written to %s\n" file
  | None -> ()

let serve_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Smaller client count and payload sweep (CI smoke test).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Also write the uvm-sim-serve/1 JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Section 7 end-to-end: N clients request payloads from a server \
             under memory pressure, once per IPC policy (copy, page loanout, \
             map-entry passing) on both VM systems, reporting throughput and \
             round-trip latency percentiles")
    Term.(
      const (fun rr wr perm bad seed quick out lout ->
          install_faults rr wr perm bad seed;
          with_lockstat lout (fun () -> run_serve quick out))
      $ read_error_rate $ write_error_rate $ permanent $ bad_slots
      $ fault_seed $ quick $ out $ lockstat_out)

(* -- vmstat ------------------------------------------------------------ *)

let run_vmstat quick cpus metrics_out spans_out =
  if cpus < 1 then begin
    Printf.eprintf "uvm_sim: --cpus must be >= 1 (got %d)\n" cpus;
    exit 2
  end;
  (* vmstat IS the sampler's output, so event collection is always on
     here — no flag needed to make the table non-empty. *)
  Vmiface.Machine.set_default_trace (Some 4096);
  Experiments.Vmstat.run ~quick ~cpus ();
  let sources = Vmiface.Machine.traced () in
  Experiments.Vmstat.print_sources sources;
  (match metrics_out with
  | Some file ->
      let buf = Buffer.create 16384 in
      Sim.Trace_export.metrics_json buf sources;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "metrics written to %s\n" file
  | None -> ());
  (match spans_out with
  | Some file ->
      let buf = Buffer.create 16384 in
      Sim.Trace_export.spans_json buf sources;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "spans written to %s\n" file
  | None -> ());
  Vmiface.Machine.reset_traced ()

let vmstat_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Smaller working set and fewer sweeps (CI smoke test).")
  in
  let cpus =
    Arg.(value & opt int 1 & info [ "cpus" ] ~docv:"N"
           ~doc:"Boot the machines with $(docv) per-CPU page caches and \
                 rotate the sweep over them; adds per-CPU runnable/steal/\
                 hit-rate columns to the table.")
  in
  Cmd.v
    (Cmd.info "vmstat"
       ~doc:"Run an over-committed anonymous working set on both VM systems \
             and print the periodic sampler's view of it: free/active/\
             inactive pool levels, swap and swapcache occupancy, and \
             fault/pagein/pageout/migration rates over simulated time, plus \
             any watchdog warnings (pagedaemon thrash, stalled drain)")
    Term.(
      const (fun rr wr perm bad seed quick cpus mout spout ->
          install_faults rr wr perm bad seed;
          run_vmstat quick cpus mout spout)
      $ read_error_rate $ write_error_rate $ permanent $ bad_slots
      $ fault_seed $ quick $ cpus $ metrics_out $ spans_out)

(* -- resilience -------------------------------------------------------- *)

let run_resilience quick out =
  let rows = Experiments.Resilience.run ~quick () in
  Experiments.Resilience.print_result rows;
  match out with
  | Some file ->
      let buf = Buffer.create 4096 in
      Experiments.Resilience.json buf rows;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "resilience results written to %s\n" file
  | None -> ()

let resilience_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Smaller tiers and working set (CI smoke test).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Also write the uvm-sim-resilience/1 JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:"Tier failover: stream a file working set through a fast+slow \
             swap pair, kill the fast device mid-stream, and report \
             survival, migrations, swapcache hit rate and per-page latency \
             before/after the death for both VM systems")
    Term.(
      const (fun rr wr perm bad seed quick out ->
          install_faults rr wr perm bad seed;
          run_resilience quick out)
      $ read_error_rate $ write_error_rate $ permanent $ bad_slots
      $ fault_seed $ quick $ out)

(* -- soak -------------------------------------------------------------- *)

let run_soak seed quick out =
  let r = Experiments.Soak.run ~quick ~seed () in
  Experiments.Soak.print_result r;
  (match out with
  | Some file ->
      let buf = Buffer.create 4096 in
      Experiments.Soak.json buf r;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "soak results written to %s\n" file
  | None -> ());
  List.exists (fun s -> not s.Experiments.Soak.so_passed) r.rows

let soak_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Chaos scenario seed (phase magnitudes jitter with it).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Shorter simulated span (CI smoke test).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Also write the uvm-sim-soak/1 JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Chaos soak: run both kernels through a seeded scenario \
             composing fork/exit churn, an I/O error storm, a memory \
             pressure spike, a swap device death and an rlimit squeeze, \
             auditing every epoch.  Gated on SLOs: zero audit failures, \
             zero lost pages, bounded p99 fault latency, every OOM kill \
             attributed to a scenario phase.  Exits nonzero on breach.")
    Term.(
      const (fun seed quick out lout ->
          if with_lockstat lout (fun () -> run_soak seed quick out) then
            Stdlib.exit 1)
      $ seed $ quick $ out $ lockstat_out)

(* -- lockstat ---------------------------------------------------------- *)

let run_lockstat cpus out folded_out =
  if cpus < 1 then begin
    Printf.eprintf "uvm_sim: --cpus must be >= 1 (got %d)\n" cpus;
    exit 2
  end;
  let r = Experiments.Lockstat.run () in
  Experiments.Lockstat.print ~cpus r;
  (match out with
  | Some file ->
      let buf = Buffer.create 16384 in
      Experiments.Lockstat.json ~cpus buf r;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "lockstat written to %s\n" file
  | None -> ());
  match folded_out with
  | Some file ->
      with_file file (fun oc ->
          output_string oc (Experiments.Lockstat.folded_string r));
      Printf.printf "folded profile written to %s\n" file
  | None -> ()

let lockstat_cmd =
  let cpus =
    Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N"
           ~doc:"Simulated CPU count for the would-be contention \
                 projection (per-class hold intervals replayed against \
                 $(docv) competing cores).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Also write the uvm-sim-lockstat/1 JSON to $(docv).")
  in
  let folded_out =
    Arg.(value & opt (some string) None & info [ "folded-out" ] ~docv:"FILE"
           ~doc:"Also write the folded-stack profile (one \"path weight\" \
                 line per stack, self-time weighted, lock spans as \
                 lock:$(i,CLASS) frames) to $(docv) — feed it to \
                 flamegraph.pl or speedscope.")
  in
  Cmd.v
    (Cmd.info "lockstat"
       ~doc:"Lock observatory: drive one paging+IPC workload through every \
             registered lock class on both VM systems, then report \
             per-class hold-time histograms, the observed lock-order graph \
             (with lockdep-style cycle detection), the projected contention \
             at N CPUs, and a flamegraph-ready folded profile whose self \
             times telescope to the measured wall time")
    Term.(
      const (fun rr wr perm bad seed cpus out fout ->
          install_faults rr wr perm bad seed;
          run_lockstat cpus out fout)
      $ read_error_rate $ write_error_rate $ permanent $ bad_slots
      $ fault_seed $ cpus $ out $ folded_out)

(* -- smp --------------------------------------------------------------- *)

let run_smp cpus quick seed out =
  if cpus < 1 then begin
    Printf.eprintf "uvm_sim: --cpus must be >= 1 (got %d)\n" cpus;
    exit 2
  end;
  let r = Experiments.Smp.run ~quick ~cpus ?seed () in
  Experiments.Smp.print r;
  (match out with
  | Some file ->
      let buf = Buffer.create 16384 in
      Experiments.Smp.json buf r;
      with_file file (fun oc -> Buffer.output_buffer oc buf);
      Printf.printf "smp results written to %s\n" file
  | None -> ());
  List.exists
    (fun (s : Experiments.Smp.system_result) ->
      s.Experiments.Smp.ss_par.Experiments.Smp.kr_audit_failures <> [])
    r.Experiments.Smp.sm_systems

let smp_cmd =
  let cpus =
    Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N"
           ~doc:"Virtual CPU count for the storm: the scheduler interleaves \
                 the workers over $(docv) per-CPU virtual clocks and the \
                 kernels boot with $(docv) per-CPU page caches.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller storm for CI smoke.")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED"
           ~doc:"Override the storm seed (default 42).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Also write the uvm-sim-smp/1 JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "smp"
       ~doc:"Simulated SMP: run the same parallel fault storm through both \
             VM systems on N virtual CPUs with sharded physmem, per-CPU \
             page caches and the lockless lookup fast path, measuring (not \
             projecting) per-CPU lock waits, cache-line bounces, fast-path \
             hit rates and the 1-CPU-baseline speedup; mid-storm full \
             audits gate the sharding invariants")
    Term.(
      const (fun cpus quick seed out ->
          if run_smp cpus quick seed out then Stdlib.exit 1)
      $ cpus $ quick $ seed $ out)

(* -- commands --------------------------------------------------------- *)

let run_all () =
  List.iter (fun (_, _, f) -> f ()) experiments;
  Experiments.Resilience.print ()
let cmd_of (name, doc, f) = Cmd.v (Cmd.info name ~doc) (with_faults f)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment in sequence")
    (with_faults run_all)

let () =
  let info =
    Cmd.info "uvm_sim" ~version:"1.0"
      ~doc:"Reproduction harness for the UVM virtual memory system paper"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          (all_cmd :: torture_cmd :: report_cmd :: serve_cmd
          :: resilience_cmd :: soak_cmd :: vmstat_cmd :: lockstat_cmd
          :: smp_cmd :: List.map cmd_of experiments)))

(** uvm_sim — reproduce the tables and figures of "The UVM Virtual Memory
    System" (Cranor & Parulkar, USENIX 1999) on the simulated substrate.

    Each subcommand regenerates one paper artifact, comparing UVM with the
    BSD VM baseline on an identical simulated machine.

    Every experiment can be run on failing hardware: the fault-injection
    options install a default fault plan that every machine booted by the
    experiment inherits (a fresh, identically-seeded plan per boot, so
    UVM and BSD VM face the same error sequence). *)

open Cmdliner

let experiments =
  [
    ("table1", "Table 1: allocated map entries", Experiments.Table1.print);
    ("table2", "Table 2: page fault counts", Experiments.Table2.print);
    ("table3", "Table 3: single-page map-fault-unmap time", Experiments.Table3.print);
    ("fig2", "Figure 2: object cache effect on file access", Experiments.Fig2.print);
    ("fig5", "Figure 5: anonymous memory allocation time", Experiments.Fig5.print);
    ("fig6", "Figure 6: fork+wait overhead", Experiments.Fig6.print);
    ("datamove", "Section 7: loanout/transfer/mexp vs copy", Experiments.Datamove.print);
    ("swapleak", "Section 5.3: swap leak demonstration", Experiments.Swapleak.print);
    ("resilience", "Failure model: paging under injected disk errors",
     Experiments.Resilience.print);
  ]

(* -- fault-injection options ----------------------------------------- *)

let read_error_rate =
  let doc = "Fail each disk read with probability $(docv) (transient unless \
             $(b,--permanent))." in
  Arg.(value & opt float 0.0 & info [ "read-error-rate" ] ~docv:"RATE" ~doc)

let write_error_rate =
  let doc = "Fail each disk write with probability $(docv) (transient unless \
             $(b,--permanent))." in
  Arg.(value & opt float 0.0 & info [ "write-error-rate" ] ~docv:"RATE" ~doc)

let permanent =
  let doc = "Rate-injected errors are permanent (bad media) instead of \
             transient." in
  Arg.(value & flag & info [ "permanent" ] ~doc)

let bad_slots =
  let doc = "Treat swap slot $(docv) as bad media: every write to it fails \
             permanently.  Repeatable." in
  Arg.(value & opt_all int [] & info [ "bad-slot" ] ~docv:"SLOT" ~doc)

let fault_seed =
  let doc = "Seed for the fault plan's random number generator." in
  Arg.(value & opt int 0xFA17 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let install_faults read_rate write_rate permanent bad fault_seed =
  let check_rate name r =
    if r < 0.0 || r > 1.0 then begin
      Printf.eprintf "uvm_sim: --%s must be in [0,1] (got %g)\n" name r;
      exit 2
    end
  in
  check_rate "read-error-rate" read_rate;
  check_rate "write-error-rate" write_rate;
  List.iter
    (fun slot ->
      if slot < 1 then begin
        Printf.eprintf "uvm_sim: --bad-slot must be >= 1 (got %d)\n" slot;
        exit 2
      end)
    bad;
  if read_rate > 0.0 || write_rate > 0.0 || bad <> [] then
    Vmiface.Machine.set_default_fault_plan
      (Some
         (fun () ->
           let plan =
             Sim.Fault_plan.create ~seed:fault_seed ~read_error_rate:read_rate
               ~write_error_rate:write_rate
               ~rate_severity:
                 (if permanent then Sim.Fault_plan.Permanent
                  else Sim.Fault_plan.Transient)
               ()
           in
           List.iter
             (fun slot ->
               Sim.Fault_plan.fail_op plan ~slot Sim.Fault_plan.Write
                 Sim.Fault_plan.Permanent)
             bad;
           plan))

let with_faults f =
  Term.(
    const (fun rr wr perm bad seed () ->
        install_faults rr wr perm bad seed;
        f ())
    $ read_error_rate $ write_error_rate $ permanent $ bad_slots $ fault_seed
    $ const ())

(* -- commands --------------------------------------------------------- *)

let run_all () = List.iter (fun (_, _, f) -> f ()) experiments
let cmd_of (name, doc, f) = Cmd.v (Cmd.info name ~doc) (with_faults f)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment in sequence")
    (with_faults run_all)

let () =
  let info =
    Cmd.info "uvm_sim" ~version:"1.0"
      ~doc:"Reproduction harness for the UVM virtual memory system paper"
  in
  exit (Cmd.eval (Cmd.group info (all_cmd :: List.map cmd_of experiments)))

(* Quickstart: boot a simulated machine running UVM, map a file and some
   anonymous memory, fork a child copy-on-write, and look at the
   statistics — the five abstractions of the paper's Figure 1 in action.

   Run with: dune exec examples/quickstart.exe *)

open Vmiface.Vmtypes
module S = Uvm.Sys

let () =
  (* Boot: 32 MB of RAM, 128 MB of swap, a disk and a filesystem. *)
  let sys = S.boot () in
  let mach = S.machine sys in
  let vfs = mach.Vmiface.Machine.vfs in
  Printf.printf "booted UVM: %d pages of RAM, %d swap slots\n"
    (Physmem.total_pages mach.Vmiface.Machine.physmem)
    (Swap.Swaptier.capacity mach.Vmiface.Machine.swap);

  (* Create a file and a process address space. *)
  let vn = Vfs.create_file vfs ~name:"/sbin/init" ~size:(8 * 4096) in
  let proc = S.new_vmspace sys in

  (* Map the file's "text" read-only shared, its "data" copy-on-write
     private, and zero-fill "bss" — exactly like the init process in the
     paper's Figure 1. *)
  let text =
    S.mmap sys proc ~npages:6 ~prot:Pmap.Prot.rx ~share:Shared (File (vn, 0))
  in
  let data =
    S.mmap sys proc ~npages:2 ~prot:Pmap.Prot.rw ~share:Private (File (vn, 6))
  in
  let bss = S.mmap sys proc ~npages:4 ~prot:Pmap.Prot.rw ~share:Private Zero in
  Printf.printf "mapped text@%d data@%d bss@%d (%d map entries)\n" text data
    bss (S.map_entry_count proc);

  (* Touch memory: page faults bring data in and the fault-ahead window
     maps neighbouring resident pages. *)
  S.access_range sys proc ~vpn:text ~npages:6 Read;
  S.write_bytes sys proc ~addr:(bss * 4096) (Bytes.of_string "hello, uvm");
  Printf.printf "after faults: %d resident pages, %d faults taken\n"
    (S.resident_pages proc) mach.Vmiface.Machine.stats.Sim.Stats.faults;

  (* Fork: the child shares everything copy-on-write. *)
  let child = S.fork sys proc in
  S.write_bytes sys child ~addr:(bss * 4096) (Bytes.of_string "hello, kid");
  let p = S.read_bytes sys proc ~addr:(bss * 4096) ~len:10 in
  let c = S.read_bytes sys child ~addr:(bss * 4096) ~len:10 in
  Printf.printf "parent sees %S, child sees %S\n" (Bytes.to_string p)
    (Bytes.to_string c);
  Printf.printf "COW resolved with %d page copies and %d in-place writes\n"
    mach.Vmiface.Machine.stats.Sim.Stats.cow_copies
    mach.Vmiface.Machine.stats.Sim.Stats.cow_reuses;

  (* Tear down; anonymous memory is freed the moment it is unreferenced. *)
  S.destroy_vmspace sys child;
  S.destroy_vmspace sys proc;
  Printf.printf "after exit: leaked anonymous pages = %d (always 0 under UVM)\n"
    (S.leaked_pages sys);
  Printf.printf "simulated time elapsed: %.1f us\n"
    (Sim.Simclock.now mach.Vmiface.Machine.clock)

(* Memory pressure: "running a large compile job concurrently with an X
   server on a system with a small amount of physical memory" (paper §8).
   A big anonymous working set forces paging; the interactive process keeps
   touching its own few pages.  Compare how long the interactive work takes
   while each VM system is busy paging — UVM's clustered pageout keeps the
   system responsive.

   Run with: dune exec examples/memory_pressure.exe

   The same job can run on failing hardware.  Options:

     --read-error-rate R    each disk read fails with probability R
     --write-error-rate R   each disk write fails with probability R
     --permanent            rate errors are bad media, not transient
     --bad-slot N           swap slot N is bad media (repeatable)
     --fault-seed S         seed for the fault plan's RNG

   e.g. dune exec examples/memory_pressure.exe -- --write-error-rate 0.02 \
          --bad-slot 1 --bad-slot 7
   Both systems ride out the faults (retry/backoff for transients,
   blacklist-and-reassign for bad media); the resilience counters show the
   recovery work each one did. *)

open Vmiface.Vmtypes

(* Minimal argv parsing: the example stays dependency-free. *)
let fault_config () =
  let read_rate = ref 0.0 in
  let write_rate = ref 0.0 in
  let permanent = ref false in
  let bad_slots = ref [] in
  let seed = ref 0xFA17 in
  let rec parse = function
    | [] -> ()
    | "--read-error-rate" :: v :: rest ->
        read_rate := float_of_string v;
        parse rest
    | "--write-error-rate" :: v :: rest ->
        write_rate := float_of_string v;
        parse rest
    | "--permanent" :: rest ->
        permanent := true;
        parse rest
    | "--bad-slot" :: v :: rest ->
        bad_slots := int_of_string v :: !bad_slots;
        parse rest
    | "--fault-seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown option %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !read_rate < 0.0 || !read_rate > 1.0 || !write_rate < 0.0 || !write_rate > 1.0
  then begin
    Printf.eprintf "error rates must be in [0,1]\n";
    exit 2
  end;
  let faulty =
    !read_rate > 0.0 || !write_rate > 0.0 || !bad_slots <> []
  in
  if not faulty then None
  else
    (* A fresh, identically-seeded plan per boot, so UVM and BSD VM face
       the same storms. *)
    Some
      (fun () ->
        let plan =
          Sim.Fault_plan.create ~seed:!seed ~read_error_rate:!read_rate
            ~write_error_rate:!write_rate
            ~rate_severity:
              (if !permanent then Sim.Fault_plan.Permanent
               else Sim.Fault_plan.Transient)
            ()
        in
        List.iter
          (fun slot ->
            Sim.Fault_plan.fail_op plan ~slot Sim.Fault_plan.Write
              Sim.Fault_plan.Permanent)
          !bad_slots;
        plan)

let fault_plan = fault_config ()

module Run (V : Vmiface.Vm_sig.VM_SYS) = struct
  let go () =
    let config =
      { (Vmiface.Machine.config_mb ~ram_mb:16 ~swap_mb:128 ()) with fault_plan }
    in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let clock = mach.Vmiface.Machine.clock in

    (* The interactive process: an "editor" with a small working set. *)
    let editor = V.new_vmspace sys in
    let ed = V.mmap sys editor ~npages:16 ~prot:Pmap.Prot.rw ~share:Private Zero in
    V.access_range sys editor ~vpn:ed ~npages:16 Write;

    (* The compile job: allocates far more than RAM. *)
    let compiler = V.new_vmspace sys in
    let npages = 8192 (* 32 MB on a 16 MB machine *) in
    let work = V.mmap sys compiler ~npages ~prot:Pmap.Prot.rw ~share:Private Zero in

    let editor_time = ref 0.0 in
    let editor_ticks = ref 0 in
    let t_start = Sim.Simclock.now clock in
    for i = 0 to npages - 1 do
      V.write_bytes sys compiler ~addr:((work + i) * 4096)
        (Bytes.of_string (Printf.sprintf "obj%05d" i));
      (* Every 64 compiler pages, the user types a character. *)
      if i mod 64 = 0 then begin
        let t0 = Sim.Simclock.now clock in
        V.touch sys editor ~vpn:(ed + (i / 64 mod 16)) Write;
        editor_time := !editor_time +. (Sim.Simclock.now clock -. t0);
        incr editor_ticks
      end
    done;
    let total = Sim.Simclock.now clock -. t_start in
    let st = mach.Vmiface.Machine.stats in
    Printf.printf
      "%-8s compile: %7.2f s | editor keystroke avg: %8.1f us | pageouts=%d in %d I/Os\n"
      V.name (total /. 1e6)
      (!editor_time /. float_of_int !editor_ticks)
      st.Sim.Stats.pageouts st.Sim.Stats.disk_write_ops;
    if fault_plan <> None then
      Printf.printf
        "         faults injected: %d | retries: %d | pageouts recovered: %d | \
         slots blacklisted: %d | pageins failed: %d | swap-full events: %d\n"
        st.Sim.Stats.io_errors_injected st.Sim.Stats.pageout_retries
        st.Sim.Stats.pageouts_recovered st.Sim.Stats.bad_slots
        st.Sim.Stats.pageins_failed st.Sim.Stats.swap_full_events
end

module U = Run (Uvm.Sys)
module B = Run (Bsdvm.Sys)

let () =
  Printf.printf "32 MB compile job on a 16 MB machine, with an editor in use:\n\n";
  U.go ();
  B.go ();
  Printf.printf
    "\nUVM reassigns swap locations and pages out in clusters; BSD VM issues\n\
     one I/O per page, so the same job takes several times longer (paper\n\
     Figure 5 / section 8).\n"

(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (simulated time / counts — the reproduction itself), plus an ablation
   sweep of UVM's pageout clustering.

   Part 2 runs Bechamel wall-clock micro-benchmarks of the simulator: one
   Test.make per paper artifact, each exercising the code path that the
   corresponding table or figure stresses, under both VM systems where
   applicable.  These measure the OCaml implementation, not the simulated
   machine — useful for tracking performance of the library itself.

   Run with: dune exec bench/main.exe *)

open Vmiface.Vmtypes

(* ------------------------------------------------------------------ *)
(* JSON emission for BENCH_results.json: tiny combinators over Buffer,
   sharing the escaper with the simulator's trace exporters.            *)

let js = Sim.Trace_export.json_string

let obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char buf ',';
      js buf k;
      Buffer.add_char buf ':';
      emit buf)
    fields;
  Buffer.add_char buf '}'

let arr emit items buf =
  Buffer.add_char buf '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      emit x buf)
    items;
  Buffer.add_char buf ']'

let jint n buf = Buffer.add_string buf (string_of_int n)
let jfloat v buf = Buffer.add_string buf (Printf.sprintf "%.3f" v)
let jstr s buf = js buf s

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's evaluation.                                     *)

let ablation_pageout_cluster () =
  Experiments.Report.title
    "Ablation: pageout cluster size (48MB allocation, 32MB RAM; cluster=1 is BSD-style)";
  Printf.printf "%-10s %14s %12s\n" "cluster" "time" "write I/Os";
  List.map
    (fun cluster ->
      let mach =
        Vmiface.Machine.boot ~config:(Vmiface.Machine.config_mb ~ram_mb:32 ()) ()
      in
      let usys =
        Uvm.State.create ~pageout_cluster:cluster
          ~aggressive_clustering:(cluster > 1) mach
      in
      Uvm.Pdaemon.install usys;
      Uvm.Vnode_pager.install_recycle_hook usys;
      let pmap = Pmap.create (Uvm.State.pmap_ctx usys) in
      let map = Uvm.Map.create usys ~pmap ~lo:16 ~hi:(1 lsl 20) ~kernel:false in
      let npages = 48 * 256 in
      let _e =
        Uvm.Map.insert map ~spage:16 ~npages ~obj:None ~objoff:0
          ~prot:Pmap.Prot.rw ~maxprot:Pmap.Prot.rwx ~inh:Inh_copy
          ~advice:Adv_normal ~cow:true ~needs_copy:true ~merge:false
      in
      let t0 = Sim.Simclock.now mach.Vmiface.Machine.clock in
      for v = 16 to 16 + npages - 1 do
        (match Uvm.Fault.fault map ~vpn:v ~access:Write ~wire:false with
        | Ok () -> ()
        | Error _ -> assert false);
        Pmap.mark_access pmap ~vpn:v ~write:true
      done;
      let dt = Sim.Simclock.now mach.Vmiface.Machine.clock -. t0 in
      let writes = mach.Vmiface.Machine.stats.Sim.Stats.disk_write_ops in
      Printf.printf "%-10d %12.3f s %12d\n" cluster (dt /. 1e6) writes;
      (cluster, dt, writes))
    [ 1; 2; 4; 8; 16; 32 ]

(* Ablation: the fault-ahead window (Table 2's mechanism), swept from
   disabled to double the paper's default, on the cc trace. *)
let ablation_fault_ahead () =
  Experiments.Report.title
    "Ablation: fault-ahead window (behind/ahead) on the cc trace (paper default 3/4)";
  Printf.printf "%-12s %10s\n" "window" "faults";
  List.map
    (fun (behind, ahead) ->
      let mach = Vmiface.Machine.boot () in
      let usys = Uvm.State.create ~fault_behind:behind ~fault_ahead:ahead mach in
      Uvm.Pdaemon.install usys;
      Uvm.Vnode_pager.install_recycle_hook usys;
      (* The facade fixes the tunables at boot, so drive the fault routine
         through a raw map built on a hand-tuned Uvm.State, replaying the
         cc trace's text accesses. *)
      let pmap = Pmap.create (Uvm.State.pmap_ctx usys) in
      let map = Uvm.Map.create usys ~pmap ~lo:16 ~hi:(1 lsl 20) ~kernel:false in
      let vfs = Uvm.State.vfs usys in
      let vn = Vfs.create_file vfs ~name:"/abl/text" ~size:(640 * 4096) in
      let obj = Uvm.Vnode_pager.attach usys vn in
      let _e =
        Uvm.Map.insert map ~spage:16 ~npages:640 ~obj:(Some obj) ~objoff:0
          ~prot:Pmap.Prot.rx ~maxprot:Pmap.Prot.rwx ~inh:Inh_copy
          ~advice:Adv_normal ~cow:true ~needs_copy:true ~merge:false
      in
      (* Replay the cc text-sweep access order. *)
      let trace = Oslayer.Trace.command_trace Oslayer.Programs.cc in
      let f0 = mach.Vmiface.Machine.stats.Sim.Stats.faults in
      List.iter
        (fun (seg, page, _) ->
          if seg = Oslayer.Trace.Seg_text && page < 640 then
            match Pmap.lookup pmap ~vpn:(16 + page) with
            | Some _ -> ()
            | None -> (
                match Uvm.Fault.fault map ~vpn:(16 + page) ~access:Read ~wire:false with
                | Ok () -> ()
                | Error _ -> assert false))
        trace;
      let faults = mach.Vmiface.Machine.stats.Sim.Stats.faults - f0 in
      Printf.printf "%d/%-10d %10d\n" behind ahead faults;
      (behind, ahead, faults))
    [ (0, 0); (1, 2); (3, 4); (6, 8) ]

(* Ablation: fault-rate sweep × pageout clustering.  At a fixed
   per-operation write-error rate, clustering is also an exposure
   reducer: fewer, larger writes meet fewer errors and so need fewer
   retries for the same workload. *)
let ablation_fault_rate () =
  Experiments.Report.title
    "Ablation: write-error rate x pageout clustering (24MB allocation, 16MB RAM)";
  Printf.printf "%-10s %-10s %12s %10s %10s %10s\n" "werr" "cluster" "time"
    "writes" "injected" "retries";
  List.concat_map
    (fun rate ->
      List.map
        (fun cluster ->
          let config =
            {
              (Vmiface.Machine.config_mb ~ram_mb:16 ~swap_mb:64 ()) with
              fault_plan =
                Some
                  (fun () ->
                    Sim.Fault_plan.create ~write_error_rate:rate
                      ~rate_severity:Sim.Fault_plan.Transient ());
            }
          in
          let mach = Vmiface.Machine.boot ~config () in
          let usys =
            Uvm.State.create ~pageout_cluster:cluster
              ~aggressive_clustering:(cluster > 1) mach
          in
          Uvm.Pdaemon.install usys;
          Uvm.Vnode_pager.install_recycle_hook usys;
          let pmap = Pmap.create (Uvm.State.pmap_ctx usys) in
          let map = Uvm.Map.create usys ~pmap ~lo:16 ~hi:(1 lsl 20) ~kernel:false in
          let npages = 24 * 256 in
          let _e =
            Uvm.Map.insert map ~spage:16 ~npages ~obj:None ~objoff:0
              ~prot:Pmap.Prot.rw ~maxprot:Pmap.Prot.rwx ~inh:Inh_copy
              ~advice:Adv_normal ~cow:true ~needs_copy:true ~merge:false
          in
          let clock = mach.Vmiface.Machine.clock in
          let t0 = Sim.Simclock.now clock in
          for v = 16 to 16 + npages - 1 do
            (match Uvm.Fault.fault map ~vpn:v ~access:Write ~wire:false with
            | Ok () -> ()
            | Error _ -> assert false);
            Pmap.mark_access pmap ~vpn:v ~write:true
          done;
          let dt = Sim.Simclock.now clock -. t0 in
          let st = mach.Vmiface.Machine.stats in
          Printf.printf "%-10.3f %-10d %10.3f s %10d %10d %10d\n" rate cluster
            (dt /. 1e6) st.Sim.Stats.disk_write_ops
            st.Sim.Stats.io_errors_injected st.Sim.Stats.pageout_retries;
          ( rate,
            cluster,
            dt,
            st.Sim.Stats.disk_write_ops,
            st.Sim.Stats.io_errors_injected,
            st.Sim.Stats.pageout_retries ))
        [ 1; 8; 16 ])
    [ 0.0; 0.01; 0.05 ]

(* Run every experiment exactly once: print the paper's tables/figures as
   before AND return the per-experiment JSON emitters that populate
   BENCH_results.json. *)
let reproduce_paper () =
  let count_rows rows =
    arr
      (fun (label, bsd, uvm) buf ->
        obj buf [ ("label", jstr label); ("bsd", jint bsd); ("uvm", jint uvm) ])
      rows
  in
  let time_rows key rows =
    arr
      (fun (n, bsd, uvm) buf ->
        obj buf [ (key, jint n); ("bsd_us", jfloat bsd); ("uvm_us", jfloat uvm) ])
      rows
  in
  let t1 = Experiments.Table1.run () in
  Experiments.Table1.print_result t1;
  let t2 = Experiments.Table2.run () in
  Experiments.Table2.print_result t2;
  let t3 = Experiments.Table3.run () in
  Experiments.Table3.print_result t3;
  let f2 = Experiments.Fig2.run () in
  Experiments.Fig2.print_result f2;
  let f5 = Experiments.Fig5.run () in
  Experiments.Fig5.print_result f5;
  let f6 = Experiments.Fig6.run () in
  Experiments.Fig6.print_result f6;
  let dm = Experiments.Datamove.run () in
  Experiments.Datamove.print_result dm;
  let sl = Experiments.Swapleak.run () in
  Experiments.Swapleak.print_result sl;
  let rs = Experiments.Resilience.run () in
  Experiments.Resilience.print_result rs;
  let sv = Experiments.Serve.run () in
  Experiments.Serve.print_result sv;
  (* Quick profile: the full soak is a CI gate of its own (uvm_sim soak);
     the bench row tracks the overload counters and p99 across commits. *)
  let sk = Experiments.Soak.run ~quick:true () in
  Experiments.Soak.print_result sk;
  (* Lock observatory rows: per-class hold times and projected contention
     so the regression gate catches a lock getting hotter. *)
  let lk = Experiments.Lockstat.run () in
  Experiments.Lockstat.print lk;
  (* Simulated-SMP rows: measured (not projected) contention, speedup and
     fast-path hit rates at 4 CPUs, quick profile — the full storm is a
     CI gate of its own (uvm_sim smp). *)
  let sm = Experiments.Smp.run ~quick:true ~cpus:4 () in
  Experiments.Smp.print sm;
  let ab_cluster = ablation_pageout_cluster () in
  let ab_ahead = ablation_fault_ahead () in
  let ab_rate = ablation_fault_rate () in
  (* The ledger-derived efficacy report (DESIGN.md §10): printed like the
     other artifacts and embedded whole in BENCH_results.json so the
     bench trajectory tracks policy efficacy, not just timings. *)
  let eff = Experiments.Effreport.run () in
  Experiments.Effreport.print_result eff;
  [
    ("efficacy_report", fun buf -> Sim.Trace_export.report_json buf eff);
    ("table1", count_rows t1);
    ("table2", count_rows t2);
    ( "table3",
      arr
        (fun (label, bsd, uvm) buf ->
          obj buf
            [ ("label", jstr label); ("bsd_us", jfloat bsd); ("uvm_us", jfloat uvm) ])
        t3 );
    ("fig2", time_rows "files" f2);
    ("fig5", time_rows "mb" f5);
    ( "fig6",
      fun buf ->
        obj buf
          [
            ("touched", time_rows "mb" f6.Experiments.Fig6.touched);
            ("untouched", time_rows "mb" f6.Experiments.Fig6.untouched);
          ] );
    ( "datamove",
      arr
        (fun (r : Experiments.Datamove.row) buf ->
          obj buf
            [
              ("pages", jint r.npages);
              ("copy_us", jfloat r.copy_us);
              ("loan_us", jfloat r.loan_us);
              ("transfer_us", jfloat r.transfer_us);
              ("mexp_us", jfloat r.mexp_us);
            ])
        dm );
    ( "serve",
      arr
        (fun (r : Experiments.Serve.row) buf ->
          obj buf
            [
              ("system", jstr r.sv_system);
              ("policy", jstr r.sv_policy);
              ("payload", jint r.sv_payload);
              ("requests", jint r.sv_requests);
              ("total_us", jfloat r.sv_total_us);
              ("mb_s", jfloat r.sv_mb_s);
              ("p50_us", jfloat r.sv_p50_us);
              ("p95_us", jfloat r.sv_p95_us);
              ("p99_us", jfloat r.sv_p99_us);
            ])
        sv );
    ( "swapleak",
      arr
        (fun (s : Experiments.Swapleak.step) buf ->
          obj buf
            [
              ("step", jstr s.step_name);
              ("bsd_leak", jint s.bsd_leak);
              ("uvm_leak", jint s.uvm_leak);
            ])
        sl );
    ( "resilience",
      arr
        (fun (r : Experiments.Resilience.row) buf ->
          obj buf
            [
              ("system", jstr r.rs_system);
              ("survived", jint (if r.rs_survived then 1 else 0));
              ("lost_pages", jint r.rs_lost_pages);
              ("migrations", jint r.rs_migrations);
              ("failovers", jint r.rs_failovers);
              ("cache_fills", jint r.rs_cache_fills);
              ("cache_hits", jint r.rs_cache_hits);
              ("hit_rate_before", jfloat r.rs_hit_rate_before);
              ("us_per_page_before", jfloat r.rs_us_per_page_before);
              ("us_per_page_after", jfloat r.rs_us_per_page_after);
              ("time_us", jfloat r.rs_time_us);
            ])
        rs );
    ( "soak",
      arr
        (fun (s : Experiments.Soak.row) buf ->
          obj buf
            [
              ("system", jstr s.Experiments.Soak.so_system);
              ("passed", jint (if s.so_passed then 1 else 0));
              ("epochs", jint s.so_epochs);
              ("time_us", jfloat s.so_time_us);
              ("audit_failures", jint s.so_audit_failures);
              ("lost_pages", jint s.so_lost_pages);
              ("p99_fault_us", jfloat s.so_p99_fault_us);
              ("oom_kills", jint s.so_oom_kills);
              ("rlimit_denials", jint s.so_rlimit_denials);
              ("proc_swapouts", jint s.so_proc_swapouts);
              ("proc_swapins", jint s.so_proc_swapins);
              ("reserve_grabs", jint s.so_reserve_grabs);
            ])
        sk.Experiments.Soak.rows );
    ( "lockstat",
      arr
        (fun (r : Experiments.Lockstat.bench_row) buf ->
          obj buf
            [
              ("system", jstr r.br_system);
              ("class", jstr r.br_cls);
              ("acquires", jint r.br_acquires);
              ("reads", jint r.br_reads);
              ("writes", jint r.br_writes);
              ("mean_hold_us", jfloat r.br_mean_hold_us);
              ("max_hold_us", jfloat r.br_max_hold_us);
              ("mean_wait_us", jfloat r.br_mean_wait_us);
              ("utilization", jfloat r.br_utilization);
            ])
        (Experiments.Lockstat.bench_rows lk) );
    ( "smp",
      arr
        (fun (r : Experiments.Smp.bench_row) buf ->
          obj buf
            [
              ("system", jstr r.br_system);
              ("cpus", jint r.br_cpus);
              ("wall_us", jfloat r.br_wall_us);
              ("lock_wait_us", jfloat r.br_wait_us);
              ("line_bounces", jint r.br_bounces);
              ("speedup", jfloat r.br_speedup);
              ("fast_hit_rate", jfloat r.br_fast_hit_rate);
            ])
        (Experiments.Smp.bench_rows sm) );
    ( "ablation_pageout_cluster",
      arr
        (fun (cluster, dt, writes) buf ->
          obj buf
            [
              ("cluster", jint cluster);
              ("time_us", jfloat dt);
              ("write_ios", jint writes);
            ])
        ab_cluster );
    ( "ablation_fault_ahead",
      arr
        (fun (behind, ahead, faults) buf ->
          obj buf
            [
              ("behind", jint behind);
              ("ahead", jint ahead);
              ("faults", jint faults);
            ])
        ab_ahead );
    ( "ablation_fault_rate",
      arr
        (fun (rate, cluster, dt, writes, injected, retries) buf ->
          obj buf
            [
              ("write_error_rate", jfloat rate);
              ("cluster", jint cluster);
              ("time_us", jfloat dt);
              ("write_ios", jint writes);
              ("injected", jint injected);
              ("retries", jint retries);
            ])
        ab_rate );
  ]

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel wall-clock micro-benchmarks of the simulator.      *)

module Setup (V : Vmiface.Vm_sig.VM_SYS) = struct
  let sys = V.boot ()
  let vm = V.new_vmspace sys

  let file =
    Vfs.create_file (V.machine sys).Vmiface.Machine.vfs
      ~name:("/bench/" ^ V.name) ~size:(64 * 4096)

  (* Table 3's unit: one map-fault-unmap cycle. *)
  let map_fault_unmap () =
    let vpn =
      V.mmap sys vm ~npages:1 ~prot:Pmap.Prot.rw ~share:Private (File (file, 0))
    in
    V.touch sys vm ~vpn Write;
    V.munmap sys vm ~vpn ~npages:1

  (* Figure 6's unit: fork + COW touch + exit over a 1MB space. *)
  let heap =
    let vpn = V.mmap sys vm ~npages:256 ~prot:Pmap.Prot.rw ~share:Private Zero in
    V.access_range sys vm ~vpn ~npages:256 Write;
    vpn

  let fork_cycle () =
    let child = V.fork sys vm in
    V.touch sys child ~vpn:heap Write;
    V.destroy_vmspace sys child

  (* Figure 2's unit: serve one mmapped file. *)
  let serve_file () =
    let vpn =
      V.mmap sys vm ~npages:16 ~prot:Pmap.Prot.read ~share:Shared (File (file, 0))
    in
    V.access_range sys vm ~vpn ~npages:16 Read;
    V.munmap sys vm ~vpn ~npages:16

  (* Table 2's unit: spawn a process and replay the "ls /" trace. *)
  module P = Oslayer.Procsim.Make (V)

  let trace = Oslayer.Trace.command_trace Oslayer.Programs.ls

  let run_ls () =
    let proc = P.spawn sys Oslayer.Programs.ls in
    P.replay sys proc trace;
    P.exit_proc sys proc
end

module US = Setup (Uvm.Sys)
module BS = Setup (Bsdvm.Sys)

(* Figure 5's unit: fill memory past RAM and force a paging cycle. *)
let paging_cycle (module V : Vmiface.Vm_sig.VM_SYS) =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 128; swap_pages = 4096 }
  in
  let sys = V.boot ~config () in
  let vm = V.new_vmspace sys in
  let vpn = V.mmap sys vm ~npages:256 ~prot:Pmap.Prot.rw ~share:Private Zero in
  fun () -> V.access_range sys vm ~vpn ~npages:256 Write

let uvm_paging = paging_cycle (module Uvm.Sys)
let bsd_paging = paging_cycle (module Bsdvm.Sys)

(* Section 7's units: loan vs copy of 64 pages. *)
let loan_sys, loan_vm, loan_vpn =
  let sys = Uvm.Sys.boot () in
  let vm = Uvm.Sys.new_vmspace sys in
  let vpn = Uvm.Sys.mmap sys vm ~npages:64 ~prot:Pmap.Prot.rw ~share:Private Zero in
  Uvm.Sys.access_range sys vm ~vpn ~npages:64 Write;
  (sys, vm, vpn)

let loan_64 () =
  let loan = Uvm.loan_to_kernel loan_vm ~vpn:loan_vpn ~npages:64 in
  Uvm.loan_finish loan_sys loan

let copy_64 () =
  let kpages = Uvm.copy_to_kernel loan_sys loan_vm ~vpn:loan_vpn ~npages:64 in
  Uvm.copy_finish loan_sys kpages

let bechamel_tests =
  let open Bechamel in
  Test.make_grouped ~name:"uvm-repro"
    [
      Test.make_grouped ~name:"table3.map-fault-unmap"
        [
          Test.make ~name:"uvm" (Staged.stage US.map_fault_unmap);
          Test.make ~name:"bsd" (Staged.stage BS.map_fault_unmap);
        ];
      Test.make_grouped ~name:"table2.ls-trace"
        [
          Test.make ~name:"uvm" (Staged.stage US.run_ls);
          Test.make ~name:"bsd" (Staged.stage BS.run_ls);
        ];
      Test.make_grouped ~name:"table1.spawn-exit"
        [
          Test.make ~name:"uvm"
            (Staged.stage (fun () ->
                 US.P.exit_proc US.sys (US.P.spawn US.sys Oslayer.Programs.cat)));
          Test.make ~name:"bsd"
            (Staged.stage (fun () ->
                 BS.P.exit_proc BS.sys (BS.P.spawn BS.sys Oslayer.Programs.cat)));
        ];
      Test.make_grouped ~name:"fig2.serve-file"
        [
          Test.make ~name:"uvm" (Staged.stage US.serve_file);
          Test.make ~name:"bsd" (Staged.stage BS.serve_file);
        ];
      Test.make_grouped ~name:"fig5.paging-cycle"
        [
          Test.make ~name:"uvm" (Staged.stage uvm_paging);
          Test.make ~name:"bsd" (Staged.stage bsd_paging);
        ];
      Test.make_grouped ~name:"fig6.fork-cycle"
        [
          Test.make ~name:"uvm" (Staged.stage US.fork_cycle);
          Test.make ~name:"bsd" (Staged.stage BS.fork_cycle);
        ];
      Test.make_grouped ~name:"sec7.datamove-64p"
        [
          Test.make ~name:"loan" (Staged.stage loan_64);
          Test.make ~name:"copy" (Staged.stage copy_64);
        ];
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  Experiments.Report.title
    "Bechamel: wall-clock cost of the simulator itself (ns per run)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.2) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] bechamel_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.filter_map
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] ->
          Printf.printf "%-44s %12.0f ns/run\n" name est;
          Some (name, est)
      | Some _ | None ->
          Printf.printf "%-44s %12s\n" name "n/a";
          None)
    (List.sort compare rows)

let results_file = "BENCH_results.json"

let write_results ~experiments ~micro =
  let buf = Buffer.create 16384 in
  obj buf
    [
      ("schema", jstr "uvm-bench/1");
      ("experiments", fun buf -> obj buf experiments);
      ( "microbench_ns_per_run",
        fun buf ->
          obj buf (List.map (fun (name, est) -> (name, jfloat est)) micro) );
    ];
  Buffer.add_char buf '\n';
  let oc = open_out results_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

let () =
  let experiments = reproduce_paper () in
  let micro = run_bechamel () in
  write_results ~experiments ~micro;
  print_newline ();
  Printf.printf
    "bench: all tables, figures and micro-benchmarks completed; results \
     written to %s.\n"
    results_file

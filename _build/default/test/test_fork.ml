(* Fork and inheritance: the paper's Figure 3 flows, minherit corner
   cases, deep fork chains, and leak-freedom. *)

module Vt = Vmiface.Vmtypes
module S = Uvm.Sys

let mk () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 1024; swap_pages = 2048 }
  in
  let sys = S.boot ~config () in
  (sys, S.new_vmspace sys)

let stats sys = (S.machine sys).Vmiface.Machine.stats
let write sys vm ~vpn s = S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string s)
let read sys vm ~vpn n = Bytes.to_string (S.read_bytes sys vm ~addr:(vpn * 4096) ~len:n)

let test_cow_isolation () =
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "parent0";
  write sys p ~vpn:(z + 1) "parent1";
  let c = S.fork sys p in
  Alcotest.(check string) "child inherits" "parent0" (read sys c ~vpn:z 7);
  write sys c ~vpn:z "child00";
  Alcotest.(check string) "child sees own" "child00" (read sys c ~vpn:z 7);
  Alcotest.(check string) "parent unchanged" "parent0" (read sys p ~vpn:z 7);
  write sys p ~vpn:(z + 1) "PARENT1";
  Alcotest.(check string) "child keeps snapshot" "parent1" (read sys c ~vpn:(z + 1) 7);
  S.destroy_vmspace sys c;
  S.destroy_vmspace sys p;
  Alcotest.(check int) "no leak" 0 (S.leaked_pages sys)

let test_needs_copy_cleared_without_copy_when_sole () =
  (* Paper Figure 3, third column: the child holds the only reference to
     the original amap, so clearing needs-copy allocates nothing. *)
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:(z + 1) "data";
  let c = S.fork sys p in
  (* Parent resolves its needs-copy first. *)
  write sys p ~vpn:(z + 1) "DATA";
  let amaps0 = (stats sys).Sim.Stats.amaps_allocated in
  (* Child writes the right-hand page: needs-copy clears in place, only a
     fresh anon is allocated for the new page. *)
  write sys c ~vpn:(z + 2) "kid!";
  Alcotest.(check int) "no amap allocated for child" amaps0
    (stats sys).Sim.Stats.amaps_allocated;
  Alcotest.(check string) "parent right page intact" "\000\000\000\000"
    (read sys p ~vpn:(z + 2) 4)

let test_write_in_place_when_sole_reference () =
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "first";
  let c = S.fork sys p in
  S.destroy_vmspace sys c;
  (* Child gone: anon refs back to 1, write goes in place (no copy). *)
  let copies0 = (stats sys).Sim.Stats.pages_copied in
  let reuse0 = (stats sys).Sim.Stats.cow_reuses in
  write sys p ~vpn:z "again";
  Alcotest.(check int) "no page copied" copies0 (stats sys).Sim.Stats.pages_copied;
  Alcotest.(check bool) "in-place reuse counted" true
    ((stats sys).Sim.Stats.cow_reuses > reuse0)

let test_inherit_none () =
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "secret";
  S.minherit sys p ~vpn:z ~npages:2 Vt.Inh_none;
  let c = S.fork sys p in
  (try
     S.touch sys c ~vpn:z Vt.Read;
     Alcotest.fail "child should have nothing there"
   with Vt.Segv { error = Vt.No_entry; _ } -> ());
  S.destroy_vmspace sys c

let test_inherit_shared () =
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "before";
  S.minherit sys p ~vpn:z ~npages:2 Vt.Inh_shared;
  let c = S.fork sys p in
  write sys c ~vpn:z "child!";
  Alcotest.(check string) "parent sees child write" "child!" (read sys p ~vpn:z 6);
  write sys p ~vpn:(z + 1) "both";
  Alcotest.(check string) "child sees parent write" "both" (read sys c ~vpn:(z + 1) 4);
  S.destroy_vmspace sys c;
  S.destroy_vmspace sys p

let test_cow_copy_of_shared_amap () =
  (* §5.4: a child receiving a copy-on-write copy of a mapping whose amap
     is shared (amap_cow_now).  The sharers' later in-place writes must
     not leak into the snapshot. *)
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "v1";
  S.minherit sys p ~vpn:z ~npages:1 Vt.Inh_shared;
  let sharer = S.fork sys p in
  (* Now flip to copy inheritance and fork a snapshot child. *)
  S.minherit sys p ~vpn:z ~npages:1 Vt.Inh_copy;
  let snap = S.fork sys p in
  write sys p ~vpn:z "v2";
  Alcotest.(check string) "sharer sees v2" "v2" (read sys sharer ~vpn:z 2);
  Alcotest.(check string) "snapshot keeps v1" "v1" (read sys snap ~vpn:z 2);
  write sys snap ~vpn:z "v3";
  Alcotest.(check string) "parent unaffected by snapshot" "v2" (read sys p ~vpn:z 2);
  List.iter (fun vm -> S.destroy_vmspace sys vm) [ sharer; snap; p ];
  Alcotest.(check int) "no leak" 0 (S.leaked_pages sys)

let test_deep_fork_chain () =
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "gen-0";
  let rec go parent n acc =
    if n = 0 then acc
    else begin
      let child = S.fork sys parent in
      write sys child ~vpn:z (Printf.sprintf "gen-%d" (6 - n));
      go child (n - 1) (child :: acc)
    end
  in
  let descendants = go p 5 [] in
  Alcotest.(check string) "ancestor untouched" "gen-0" (read sys p ~vpn:z 5);
  List.iteri
    (fun i vm ->
      Alcotest.(check string) "each generation distinct"
        (Printf.sprintf "gen-%d" (5 - i))
        (read sys vm ~vpn:z 5))
    descendants;
  List.iter (fun vm -> S.destroy_vmspace sys vm) (p :: descendants);
  Alcotest.(check int) "no leak" 0 (S.leaked_pages sys);
  Alcotest.(check int) "no swap held" 0 (S.swap_slots_in_use sys)

let test_fork_write_protects_parent () =
  let sys, p = mk () in
  let z = S.mmap sys p ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "x";
  let faults0 = (stats sys).Sim.Stats.faults in
  let c = S.fork sys p in
  (* Parent's pte must have lost write permission. *)
  (match Pmap.lookup p.S.pmap ~vpn:z with
  | Some pte -> Alcotest.(check bool) "write-protected" false pte.Pmap.prot.Pmap.Prot.w
  | None -> Alcotest.fail "parent lost mapping");
  write sys p ~vpn:z "y";
  Alcotest.(check bool) "parent write faulted" true
    ((stats sys).Sim.Stats.faults > faults0);
  Alcotest.(check string) "child snapshot intact" "x" (read sys c ~vpn:z 1)

let test_fork_private_file_mapping () =
  let sys, p = mk () in
  let vn = Vfs.create_file (S.machine sys).Vmiface.Machine.vfs ~name:"/ff" ~size:8192 in
  let m = S.mmap sys p ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private (Vt.File (vn, 0)) in
  write sys p ~vpn:m "AA";
  let c = S.fork sys p in
  write sys c ~vpn:m "BB";
  write sys c ~vpn:(m + 1) "CC";
  Alcotest.(check string) "parent page" "AA" (read sys p ~vpn:m 2);
  Alcotest.(check string) "child page" "BB" (read sys c ~vpn:m 2);
  (* Page 1 was never written by the parent: it still comes from the
     file for the parent, but the child has its own copy. *)
  let want = String.init 2 (fun i -> Vfs.file_byte ~name:"/ff" ~off:(4096 + i)) in
  Alcotest.(check string) "parent from file" want (read sys p ~vpn:(m + 1) 2);
  Alcotest.(check string) "child own copy" "CC" (read sys c ~vpn:(m + 1) 2)

(* Property: arbitrary fork trees with random writes keep every process's
   view equal to a pure oracle, and tear down without leaks. *)
let prop_fork_oracle =
  QCheck.Test.make ~name:"fork tree matches oracle" ~count:30
    QCheck.(pair small_int (list (triple (int_range 0 5) (int_range 0 7) small_int)))
    (fun (seed, ops) ->
      let sys, root = mk () in
      let npages = 8 in
      let z = S.mmap sys root ~npages ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
      ignore seed;
      (* Oracle: per live process, expected first byte of each page. *)
      let procs = ref [ (root, Array.make npages '\000') ] in
      List.iter
        (fun (op, page, v) ->
          let idx = op mod List.length !procs in
          let vm, model = List.nth !procs idx in
          match op with
          | 0 | 1 | 2 ->
              let ch = Char.chr (32 + (v mod 95)) in
              S.write_bytes sys vm ~addr:((z + page) * 4096) (Bytes.make 1 ch);
              model.(page) <- ch
          | 3 | 4 ->
              if List.length !procs < 6 then
                procs := (S.fork sys vm, Array.copy model) :: !procs
          | _ ->
              if List.length !procs > 1 then begin
                S.destroy_vmspace sys vm;
                procs := List.filteri (fun i _ -> i <> idx) !procs
              end)
        ops;
      let ok =
        List.for_all
          (fun (vm, model) ->
            Array.to_list model
            |> List.mapi (fun i expected ->
                   Bytes.get (S.read_bytes sys vm ~addr:((z + i) * 4096) ~len:1) 0
                   = expected)
            |> List.for_all Fun.id)
          !procs
      in
      List.iter (fun (vm, _) -> S.destroy_vmspace sys vm) !procs;
      ok && S.leaked_pages sys = 0)

let () =
  Alcotest.run "fork"
    [
      ( "cow",
        [
          Alcotest.test_case "isolation" `Quick test_cow_isolation;
          Alcotest.test_case "needs-copy sole ref" `Quick test_needs_copy_cleared_without_copy_when_sole;
          Alcotest.test_case "in-place write" `Quick test_write_in_place_when_sole_reference;
          Alcotest.test_case "parent write-protected" `Quick test_fork_write_protects_parent;
          Alcotest.test_case "private file mapping" `Quick test_fork_private_file_mapping;
        ] );
      ( "inheritance",
        [
          Alcotest.test_case "none" `Quick test_inherit_none;
          Alcotest.test_case "shared" `Quick test_inherit_shared;
          Alcotest.test_case "copy of shared amap" `Quick test_cow_copy_of_shared_amap;
        ] );
      ( "chains",
        [
          Alcotest.test_case "deep fork chain" `Quick test_deep_fork_chain;
          QCheck_alcotest.to_alcotest prop_fork_oracle;
        ] );
    ]

(* Generic conformance suite: the same semantic checks run against BOTH
   VM systems through the common signature, including a randomized
   mmap/write/fork/destroy oracle test.  Whatever their internals, the two
   systems must implement identical user-visible memory semantics. *)

module Vt = Vmiface.Vmtypes

module Conformance (V : Vmiface.Vm_sig.VM_SYS) = struct
  let mk () =
    let config =
      { Vmiface.Machine.default_config with ram_pages = 1024; swap_pages = 4096 }
    in
    let sys = V.boot ~config () in
    (sys, V.new_vmspace sys)

  let write sys vm ~vpn s = V.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string s)
  let read sys vm ~vpn n = Bytes.to_string (V.read_bytes sys vm ~addr:(vpn * 4096) ~len:n)

  let test_boundary_straddling_write () =
    let sys, vm = mk () in
    let vpn = V.mmap sys vm ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    (* Write across the page boundary. *)
    V.write_bytes sys vm ~addr:((vpn * 4096) + 4090) (Bytes.of_string "straddling!");
    let got = Bytes.to_string (V.read_bytes sys vm ~addr:((vpn * 4096) + 4090) ~len:11) in
    Alcotest.(check string) "straddle roundtrip" "straddling!" got

  let test_mprotect_blocks_then_allows () =
    let sys, vm = mk () in
    let vpn = V.mmap sys vm ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    write sys vm ~vpn "abc";
    V.mprotect sys vm ~vpn ~npages:2 Pmap.Prot.read;
    (try
       write sys vm ~vpn "nope";
       Alcotest.fail "write should be denied"
     with Vt.Segv { error = Vt.Prot_denied; _ } -> ());
    Alcotest.(check string) "read still works" "abc" (read sys vm ~vpn 3);
    V.mprotect sys vm ~vpn ~npages:2 Pmap.Prot.rw;
    write sys vm ~vpn "xyz";
    Alcotest.(check string) "write after re-enable" "xyz" (read sys vm ~vpn 3)

  let test_munmap_then_access_faults () =
    let sys, vm = mk () in
    let vpn = V.mmap sys vm ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    write sys vm ~vpn "gone";
    V.munmap sys vm ~vpn ~npages:4;
    try
      ignore (read sys vm ~vpn 4);
      Alcotest.fail "expected Segv"
    with Vt.Segv { error = Vt.No_entry; _ } -> ()

  let test_shared_file_two_processes () =
    let sys, vm1 = mk () in
    let vm2 = V.new_vmspace sys in
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/shared2" ~size:8192 in
    let a = V.mmap sys vm1 ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Shared (Vt.File (vn, 0)) in
    let b = V.mmap sys vm2 ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Shared (Vt.File (vn, 0)) in
    write sys vm1 ~vpn:a "from-vm1";
    Alcotest.(check string) "vm2 sees vm1's shared write" "from-vm1" (read sys vm2 ~vpn:b 8)

  let test_mmap_offset_within_file () =
    let sys, vm = mk () in
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/offset" ~size:16384 in
    (* Map only the third page of the file. *)
    let vpn = V.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 2)) in
    Alcotest.(check char) "page-2 data" (Vfs.file_byte ~name:"/offset" ~off:(2 * 4096))
      (Bytes.get (V.read_bytes sys vm ~addr:(vpn * 4096) ~len:1) 0)

  let test_fixed_address_mapping () =
    let sys, vm = mk () in
    let vpn = V.mmap sys vm ~fixed_at:5000 ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    Alcotest.(check int) "placed exactly" 5000 vpn;
    Alcotest.check_raises "overlap rejected"
      (Invalid_argument
         (if V.name = "UVM" then "Uvm_map.insert: range not free"
          else "Vm_map.insert_default: range not free"))
      (fun () ->
        ignore
          (V.mmap sys vm ~fixed_at:5001 ~npages:2 ~prot:Pmap.Prot.rw
             ~share:Vt.Private Vt.Zero))

  (* Randomized oracle: private memory + forks + writes; every process
     must always read exactly what the pure model predicts. *)
  let prop_oracle =
    QCheck.Test.make
      ~name:(Printf.sprintf "%s matches oracle" V.name)
      ~count:25
      QCheck.(list (triple (int_range 0 9) (int_range 0 11) small_int))
      (fun ops ->
        let sys, root = mk () in
        let npages = 12 in
        let z = V.mmap sys root ~npages ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
        let procs = ref [ (root, Array.make npages '\000') ] in
        List.iter
          (fun (op, page, v) ->
            let idx = v mod List.length !procs in
            let vm, model = List.nth !procs idx in
            match op with
            | 0 | 1 | 2 | 3 | 4 ->
                let ch = Char.chr (32 + ((v * 7) mod 95)) in
                V.write_bytes sys vm ~addr:((z + page) * 4096) (Bytes.make 1 ch);
                model.(page) <- ch
            | 5 | 6 ->
                (* Read-verify a random page right now. *)
                let got = Bytes.get (V.read_bytes sys vm ~addr:((z + page) * 4096) ~len:1) 0 in
                if got <> model.(page) then failwith "oracle mismatch mid-run"
            | 7 | 8 ->
                if List.length !procs < 5 then
                  procs := (V.fork sys vm, Array.copy model) :: !procs
            | _ ->
                if List.length !procs > 1 then begin
                  V.destroy_vmspace sys vm;
                  procs := List.filteri (fun i _ -> i <> idx) !procs
                end)
          ops;
        let ok =
          List.for_all
            (fun (vm, model) ->
              List.for_all
                (fun i ->
                  Bytes.get (V.read_bytes sys vm ~addr:((z + i) * 4096) ~len:1) 0
                  = model.(i))
                (List.init npages Fun.id))
            !procs
        in
        List.iter (fun (vm, _) -> V.destroy_vmspace sys vm) !procs;
        ok)

  let suite =
    [
      Alcotest.test_case "straddling write" `Quick test_boundary_straddling_write;
      Alcotest.test_case "mprotect" `Quick test_mprotect_blocks_then_allows;
      Alcotest.test_case "munmap faults" `Quick test_munmap_then_access_faults;
      Alcotest.test_case "shared file 2 procs" `Quick test_shared_file_two_processes;
      Alcotest.test_case "file offset" `Quick test_mmap_offset_within_file;
      Alcotest.test_case "fixed address" `Quick test_fixed_address_mapping;
      QCheck_alcotest.to_alcotest prop_oracle;
    ]
end

module U = Conformance (Uvm.Sys)
module B = Conformance (Bsdvm.Sys)

(* Cross-system comparison: both systems, same workload, identical
   user-visible results page by page. *)
let test_cross_system_agreement () =
  let run (module V : Vmiface.Vm_sig.VM_SYS) =
    let config =
      { Vmiface.Machine.default_config with ram_pages = 256; swap_pages = 2048 }
    in
    let sys = V.boot ~config () in
    let vm = V.new_vmspace sys in
    let vfs = (V.machine sys).Vmiface.Machine.vfs in
    let vn = Vfs.create_file vfs ~name:"/agree" ~size:(8 * 4096) in
    let f = V.mmap sys vm ~npages:8 ~prot:Pmap.Prot.rw ~share:Vt.Private (Vt.File (vn, 0)) in
    let z = V.mmap sys vm ~npages:100 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
    let rng = Sim.Rng.create ~seed:99 in
    for _ = 1 to 400 do
      let p = Sim.Rng.int rng 100 in
      V.write_bytes sys vm ~addr:((z + p) * 4096) (Bytes.of_string (string_of_int p))
    done;
    V.write_bytes sys vm ~addr:((f + 3) * 4096) (Bytes.of_string "private");
    let child = V.fork sys vm in
    V.write_bytes sys child ~addr:(z * 4096) (Bytes.of_string "CH");
    let dump vmx =
      List.map (fun i -> Bytes.to_string (V.read_bytes sys vmx ~addr:((z + i) * 4096) ~len:4))
        (List.init 100 Fun.id)
      @ List.map (fun i -> Bytes.to_string (V.read_bytes sys vmx ~addr:((f + i) * 4096) ~len:4))
          (List.init 8 Fun.id)
    in
    (dump vm, dump child)
  in
  let u = run (module Uvm.Sys) and b = run (module Bsdvm.Sys) in
  Alcotest.(check bool) "parent views identical" true (fst u = fst b);
  Alcotest.(check bool) "child views identical" true (snd u = snd b)

let () =
  Alcotest.run "vm_generic"
    [
      ("uvm", U.suite);
      ("bsdvm", B.suite);
      ( "cross-system",
        [ Alcotest.test_case "agreement" `Quick test_cross_system_agreement ] );
    ]

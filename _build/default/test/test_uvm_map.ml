(* UVM maps: single-step insert, lookup, clipping, two-phase unmap,
   attribute changes, kernel-entry merging, invariants. *)

module Vt = Vmiface.Vmtypes

let mk () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 256; swap_pages = 512 }
  in
  let sys = Uvm.State.create (Vmiface.Machine.boot ~config ()) in
  let pmap = Pmap.create (Uvm.State.pmap_ctx sys) in
  (sys, Uvm.Map.create sys ~pmap ~lo:0 ~hi:4096 ~kernel:false)

let insert ?(merge = false) ?(prot = Pmap.Prot.rw) ?obj ?(cow = true)
    ?(needs_copy = true) map ~spage ~npages =
  Uvm.Map.insert map ~spage ~npages ~obj ~objoff:0 ~prot
    ~maxprot:Pmap.Prot.rwx ~inh:Vt.Inh_copy ~advice:Vt.Adv_normal ~cow
    ~needs_copy ~merge

let check_ok map =
  match Uvm.Map.check_invariants map with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("map invariant: " ^ msg)

let test_insert_lookup () =
  let _, map = mk () in
  let _e1 = insert map ~spage:10 ~npages:5 in
  let _e2 = insert map ~spage:20 ~npages:5 in
  Alcotest.(check int) "two entries" 2 (Uvm.Map.entry_count map);
  (match Uvm.Map.lookup map ~vpn:12 with
  | Some e -> Alcotest.(check int) "right entry" 10 e.Uvm.Map.spage
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "hole misses" true (Uvm.Map.lookup map ~vpn:17 = None);
  Alcotest.(check bool) "below misses" true (Uvm.Map.lookup map ~vpn:5 = None);
  Alcotest.(check bool) "end exclusive" true (Uvm.Map.lookup map ~vpn:15 = None);
  check_ok map

let test_insert_overlap_rejected () =
  let _, map = mk () in
  ignore (insert map ~spage:10 ~npages:10);
  Alcotest.check_raises "overlap"
    (Invalid_argument "Uvm_map.insert: range not free") (fun () ->
      ignore (insert map ~spage:15 ~npages:10));
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Uvm_map.insert: out of map bounds") (fun () ->
      ignore (insert map ~spage:4090 ~npages:10));
  Alcotest.(check int) "still one entry" 1 (Uvm.Map.entry_count map)

let test_find_space () =
  let _, map = mk () in
  ignore (insert map ~spage:0 ~npages:10);
  ignore (insert map ~spage:12 ~npages:10);
  Alcotest.(check int) "first fit in hole" 10 (Uvm.Map.find_space map ~npages:2);
  Alcotest.(check int) "large skips hole" 22 (Uvm.Map.find_space map ~npages:5);
  Alcotest.check_raises "exhausted" Not_found (fun () ->
      ignore (Uvm.Map.find_space map ~npages:5000))

let test_clip_range () =
  let _, map = mk () in
  ignore (insert map ~spage:0 ~npages:10);
  Uvm.Map.clip_range map ~spage:3 ~epage:7;
  Alcotest.(check int) "split into three" 3 (Uvm.Map.entry_count map);
  let spans =
    List.map (fun e -> (e.Uvm.Map.spage, e.Uvm.Map.epage)) (Uvm.Map.entries map)
  in
  Alcotest.(check (list (pair int int))) "spans" [ (0, 3); (3, 7); (7, 10) ] spans;
  check_ok map

let test_clip_preserves_amap_offsets () =
  let sys, map = mk () in
  let e = insert map ~spage:0 ~npages:8 ~needs_copy:false in
  let am = Uvm.Amap.create sys ~nslots:8 in
  let marked = Uvm.Anon.alloc sys ~zero:true in
  Uvm.Amap.add sys am ~slot:5 marked;
  e.Uvm.Map.amap <- Some am;
  Uvm.Map.clip_range map ~spage:4 ~epage:8;
  let tail = List.nth (Uvm.Map.entries map) 1 in
  Alcotest.(check int) "tail amap offset" 4 tail.Uvm.Map.amapoff;
  Alcotest.(check int) "amap splitref" 2 am.Uvm.Amap.refs;
  Alcotest.(check bool) "anon visible through tail" true
    (match Uvm.Amap.lookup am ~slot:(tail.Uvm.Map.amapoff + 1) with
    | Some a -> a == marked
    | None -> false);
  check_ok map

let test_unmap_partial () =
  let sys, map = mk () in
  ignore (insert map ~spage:0 ~npages:10);
  let before = (Uvm.State.stats sys).Sim.Stats.map_entries_freed in
  Uvm.Map.unmap map ~spage:2 ~npages:4;
  Alcotest.(check int) "two remain" 2 (Uvm.Map.entry_count map);
  Alcotest.(check bool) "hole unmapped" true (Uvm.Map.lookup map ~vpn:3 = None);
  Alcotest.(check bool) "head still there" true (Uvm.Map.lookup map ~vpn:1 <> None);
  Alcotest.(check int) "freed accounted" (before + 1)
    (Uvm.State.stats sys).Sim.Stats.map_entries_freed;
  check_ok map

let test_two_phase_unmap_lock_hold () =
  (* The reference drops (object detach) happen after the map lock is
     released: lock-hold time must not include the pager work. *)
  let sys, map = mk () in
  let vfs = Uvm.State.vfs sys in
  let vn = Vfs.create_file vfs ~name:"/f" ~size:40960 in
  let obj = Uvm.Vnode_pager.attach sys vn in
  ignore (insert map ~spage:0 ~npages:10 ~obj ~cow:false ~needs_copy:false);
  let stats = Uvm.State.stats sys in
  let held_before = stats.Sim.Stats.map_lock_held_us in
  Uvm.Map.unmap map ~spage:0 ~npages:10;
  let held = stats.Sim.Stats.map_lock_held_us -. held_before in
  Alcotest.(check bool) "short hold" true (held < 50.0);
  Alcotest.(check int) "object detached" 0 obj.Uvm.Object.refs

let test_protect_and_maxprot () =
  let _, map = mk () in
  ignore (insert map ~spage:0 ~npages:4 ~prot:Pmap.Prot.rw);
  Uvm.Map.protect map ~spage:0 ~npages:4 ~prot:Pmap.Prot.read;
  (match Uvm.Map.lookup map ~vpn:0 with
  | Some e ->
      Alcotest.(check bool) "downgraded" true
        (Pmap.Prot.equal e.Uvm.Map.prot Pmap.Prot.read)
  | None -> Alcotest.fail "missing");
  let e = Option.get (Uvm.Map.lookup map ~vpn:0) in
  e.Uvm.Map.maxprot <- Pmap.Prot.read;
  Alcotest.check_raises "exceeds maxprot"
    (Invalid_argument "Uvm_map.protect: exceeds maxprot") (fun () ->
      Uvm.Map.protect map ~spage:0 ~npages:4 ~prot:Pmap.Prot.rw)

let test_attribute_clipping () =
  let _, map = mk () in
  ignore (insert map ~spage:0 ~npages:10);
  Uvm.Map.set_inherit map ~spage:2 ~npages:3 Vt.Inh_none;
  Alcotest.(check int) "fragmented" 3 (Uvm.Map.entry_count map);
  let mid = Option.get (Uvm.Map.lookup map ~vpn:3) in
  Alcotest.(check bool) "inherit set" true (mid.Uvm.Map.inh = Vt.Inh_none);
  Uvm.Map.set_advice map ~spage:2 ~npages:3 Vt.Adv_random;
  Alcotest.(check int) "no further fragmentation" 3 (Uvm.Map.entry_count map);
  Uvm.Map.mark_wired map ~spage:2 ~npages:3;
  Alcotest.(check int) "wired recorded" 1 mid.Uvm.Map.wired;
  Uvm.Map.mark_unwired map ~spage:2 ~npages:3;
  Alcotest.(check int) "unwired" 0 mid.Uvm.Map.wired;
  Alcotest.check_raises "double unwire"
    (Invalid_argument "Uvm_map.mark_unwired: not wired") (fun () ->
      Uvm.Map.mark_unwired map ~spage:2 ~npages:3);
  check_ok map

let test_kernel_merge () =
  let sys, _ = mk () in
  let pmap = Pmap.create (Uvm.State.pmap_ctx sys) in
  let kmap = Uvm.Map.create sys ~pmap ~lo:0 ~hi:4096 ~kernel:true in
  ignore (insert ~merge:true ~needs_copy:false kmap ~spage:0 ~npages:16);
  ignore (insert ~merge:true ~needs_copy:false kmap ~spage:16 ~npages:8);
  Alcotest.(check int) "adjacent compatible entries merged" 1
    (Uvm.Map.entry_count kmap);
  ignore (insert ~merge:true ~needs_copy:false kmap ~spage:100 ~npages:8);
  Alcotest.(check int) "gap blocks merge" 2 (Uvm.Map.entry_count kmap);
  ignore
    (insert ~merge:true ~needs_copy:false ~prot:Pmap.Prot.read kmap ~spage:24
       ~npages:8);
  Alcotest.(check int) "attribute mismatch blocks merge" 3
    (Uvm.Map.entry_count kmap);
  check_ok kmap

let test_destroy_drops_all () =
  let sys, map = mk () in
  let vn = Vfs.create_file (Uvm.State.vfs sys) ~name:"/g" ~size:4096 in
  let obj = Uvm.Vnode_pager.attach sys vn in
  ignore (insert map ~spage:0 ~npages:1 ~obj ~cow:false ~needs_copy:false);
  ignore (insert map ~spage:5 ~npages:3);
  Uvm.Map.destroy map;
  Alcotest.(check int) "empty" 0 (Uvm.Map.entry_count map);
  Alcotest.(check int) "obj released" 0 obj.Uvm.Object.refs

(* Property: random mmap/munmap sequences keep the map sorted,
   non-overlapping and correctly counted. *)
let prop_map_invariants =
  QCheck.Test.make ~name:"map invariants under random mmap/munmap" ~count:80
    QCheck.(list (triple bool (int_range 0 200) (int_range 1 20)))
    (fun ops ->
      let _, map = mk () in
      List.iter
        (fun (do_map, spage, npages) ->
          if do_map then begin
            if Uvm.Map.range_free map ~spage ~npages then
              ignore (insert map ~spage ~npages)
          end
          else Uvm.Map.unmap map ~spage ~npages)
        ops;
      Uvm.Map.check_invariants map = Ok ())

let () =
  Alcotest.run "uvm_map"
    [
      ( "insert",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "overlap rejected" `Quick test_insert_overlap_rejected;
          Alcotest.test_case "find space" `Quick test_find_space;
          Alcotest.test_case "kernel merge" `Quick test_kernel_merge;
        ] );
      ( "clip",
        [
          Alcotest.test_case "range" `Quick test_clip_range;
          Alcotest.test_case "amap offsets" `Quick test_clip_preserves_amap_offsets;
        ] );
      ( "unmap",
        [
          Alcotest.test_case "partial" `Quick test_unmap_partial;
          Alcotest.test_case "two-phase lock hold" `Quick test_two_phase_unmap_lock_hold;
          Alcotest.test_case "destroy" `Quick test_destroy_drops_all;
        ] );
      ( "attributes",
        [
          Alcotest.test_case "protect/maxprot" `Quick test_protect_and_maxprot;
          Alcotest.test_case "clipping" `Quick test_attribute_clipping;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_map_invariants ]);
    ]

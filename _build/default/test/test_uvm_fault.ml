(* The UVM fault routine: zero-fill, object-backed, COW, needs-copy,
   fault-ahead, errors, wiring. *)

module Vt = Vmiface.Vmtypes
module S = Uvm.Sys

let mk () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 512; swap_pages = 1024 }
  in
  let sys = S.boot ~config () in
  (sys, S.new_vmspace sys)

let stats sys = (S.machine sys).Vmiface.Machine.stats
let vfs sys = (S.machine sys).Vmiface.Machine.vfs

let test_zero_fill_write () =
  let sys, vm = mk () in
  let vpn = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "hello");
  let b = S.read_bytes sys vm ~addr:(vpn * 4096) ~len:5 in
  Alcotest.(check bytes) "written data" (Bytes.of_string "hello") b;
  let z = S.read_bytes sys vm ~addr:((vpn * 4096) + 5) ~len:5 in
  Alcotest.(check bytes) "rest zero" (Bytes.make 5 '\000') z

let test_zero_fill_read_then_write () =
  let sys, vm = mk () in
  let vpn = S.mmap sys vm ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.touch sys vm ~vpn Vt.Read;
  let f1 = (stats sys).Sim.Stats.faults in
  (* Fresh zero anon has refs=1: the read fault maps it writable, so the
     subsequent write takes no second fault. *)
  S.touch sys vm ~vpn Vt.Write;
  Alcotest.(check int) "no second fault" f1 (stats sys).Sim.Stats.faults

let test_file_shared_read () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/sf" ~size:16384 in
  let vpn = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  let b = S.read_bytes sys vm ~addr:((vpn * 4096) + 7) ~len:4 in
  let want = Bytes.init 4 (fun i -> Vfs.file_byte ~name:"/sf" ~off:(7 + i)) in
  Alcotest.(check bytes) "file contents" want b

let test_file_shared_write_reaches_file () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/sw" ~size:8192 in
  let vpn = S.mmap sys vm ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "SHARED");
  S.msync sys vm ~vpn ~npages:2;
  Alcotest.(check string) "flushed to file" "SHARED"
    (Bytes.to_string (Bytes.sub vn.Vfs.Vnode.data 0 6))

let test_file_private_write_isolated () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/pw" ~size:8192 in
  let vpn = S.mmap sys vm ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private (Vt.File (vn, 0)) in
  let orig = Bytes.get vn.Vfs.Vnode.data 0 in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "PRIV");
  S.msync sys vm ~vpn ~npages:2;
  Alcotest.(check char) "file untouched" orig (Bytes.get vn.Vfs.Vnode.data 0);
  Alcotest.(check int) "promoted via one copy" 1 (stats sys).Sim.Stats.cow_copies;
  (* A second process mapping the file sees the original data. *)
  let vm2 = S.new_vmspace sys in
  let vpn2 = S.mmap sys vm2 ~npages:2 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  Alcotest.(check char) "other mapping original" orig
    (Bytes.get (S.read_bytes sys vm2 ~addr:(vpn2 * 4096) ~len:1) 0)

let test_no_entry_segv () =
  let sys, vm = mk () in
  (try
     S.touch sys vm ~vpn:999 Vt.Read;
     Alcotest.fail "expected Segv"
   with Vt.Segv { error = Vt.No_entry; _ } -> ());
  let vpn = S.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Private Vt.Zero in
  try
    S.touch sys vm ~vpn Vt.Write;
    Alcotest.fail "expected prot Segv"
  with Vt.Segv { error = Vt.Prot_denied; _ } -> ()

let test_fault_ahead_maps_residents () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/fa" ~size:(32 * 4096) in
  let vpn = S.mmap sys vm ~npages:32 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  (* Make all pages resident in another vmspace first. *)
  let warm = S.new_vmspace sys in
  let wvpn = S.mmap sys warm ~npages:32 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.access_range sys warm ~vpn:wvpn ~npages:32 Vt.Read;
  let f0 = (stats sys).Sim.Stats.faults in
  let fa0 = (stats sys).Sim.Stats.fault_ahead_mapped in
  S.touch sys vm ~vpn:(vpn + 10) Vt.Read;
  Alcotest.(check int) "one fault" (f0 + 1) (stats sys).Sim.Stats.faults;
  (* Default window: 3 behind + 4 ahead, all resident. *)
  Alcotest.(check int) "seven neighbours mapped" (fa0 + 7)
    (stats sys).Sim.Stats.fault_ahead_mapped;
  (* Accessing a neighbour takes no fault now. *)
  S.touch sys vm ~vpn:(vpn + 11) Vt.Read;
  S.touch sys vm ~vpn:(vpn + 8) Vt.Read;
  Alcotest.(check int) "neighbours pre-mapped" (f0 + 1) (stats sys).Sim.Stats.faults

let test_madvise_random_disables_fault_ahead () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/rand" ~size:(16 * 4096) in
  let vpn = S.mmap sys vm ~npages:16 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  let warm = S.new_vmspace sys in
  let wvpn = S.mmap sys warm ~npages:16 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.access_range sys warm ~vpn:wvpn ~npages:16 Vt.Read;
  S.madvise sys vm ~vpn ~npages:16 Vt.Adv_random;
  let fa0 = (stats sys).Sim.Stats.fault_ahead_mapped in
  S.touch sys vm ~vpn:(vpn + 5) Vt.Read;
  Alcotest.(check int) "no fault-ahead under Adv_random" fa0
    (stats sys).Sim.Stats.fault_ahead_mapped

let test_fault_ahead_never_io () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/cold" ~size:(64 * 4096) in
  let vpn = S.mmap sys vm ~npages:64 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  let ops0 = (stats sys).Sim.Stats.disk_read_ops in
  S.touch sys vm ~vpn Vt.Read;
  (* One clustered read for the miss; fault-ahead must not add I/O. *)
  Alcotest.(check int) "single read op" (ops0 + 1) (stats sys).Sim.Stats.disk_read_ops

let test_cluster_read () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/clust" ~size:(16 * 4096) in
  let vpn = S.mmap sys vm ~npages:16 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  let pr0 = (stats sys).Sim.Stats.disk_pages_read in
  S.touch sys vm ~vpn Vt.Read;
  (* io_cluster (default 4) pages come in on one op. *)
  Alcotest.(check int) "cluster of 4" (pr0 + 4) (stats sys).Sim.Stats.disk_pages_read

let test_wire_fault_resolves_cow () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/wired" ~size:4096 in
  let vpn = S.mmap sys vm ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private (Vt.File (vn, 0)) in
  S.mlock sys vm ~vpn ~npages:1;
  (* The wired page must already be the private copy: writing now must not
     replace the frame. *)
  let pte = Option.get (Pmap.lookup vm.S.pmap ~vpn) in
  let frame_before = pte.Pmap.page.Physmem.Page.id in
  Alcotest.(check bool) "wired" true (pte.Pmap.page.Physmem.Page.wire_count > 0);
  S.touch sys vm ~vpn Vt.Write;
  let pte2 = Option.get (Pmap.lookup vm.S.pmap ~vpn) in
  Alcotest.(check int) "same frame after write" frame_before
    pte2.Pmap.page.Physmem.Page.id;
  S.munlock sys vm ~vpn ~npages:1;
  Alcotest.(check int) "unwired" 0 pte2.Pmap.page.Physmem.Page.wire_count

let test_vslock_no_fragmentation () =
  let sys, vm = mk () in
  let vpn = S.mmap sys vm ~npages:8 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let entries0 = S.map_entry_count vm in
  let wb = S.vslock sys vm ~vpn:(vpn + 3) ~npages:2 in
  Alcotest.(check int) "no entries added by vslock" entries0 (S.map_entry_count vm);
  S.vsunlock sys vm wb;
  Alcotest.(check int) "still intact" entries0 (S.map_entry_count vm);
  (* mlock, by contrast, must fragment (the one case with no other home). *)
  S.mlock sys vm ~vpn:(vpn + 3) ~npages:2;
  Alcotest.(check int) "mlock fragments" (entries0 + 2) (S.map_entry_count vm)

let () =
  Alcotest.run "uvm_fault"
    [
      ( "zero-fill",
        [
          Alcotest.test_case "write" `Quick test_zero_fill_write;
          Alcotest.test_case "read then write" `Quick test_zero_fill_read_then_write;
        ] );
      ( "file",
        [
          Alcotest.test_case "shared read" `Quick test_file_shared_read;
          Alcotest.test_case "shared write" `Quick test_file_shared_write_reaches_file;
          Alcotest.test_case "private write isolated" `Quick test_file_private_write_isolated;
          Alcotest.test_case "cluster read" `Quick test_cluster_read;
        ] );
      ( "errors",
        [ Alcotest.test_case "segv" `Quick test_no_entry_segv ] );
      ( "fault-ahead",
        [
          Alcotest.test_case "maps residents" `Quick test_fault_ahead_maps_residents;
          Alcotest.test_case "madvise random" `Quick test_madvise_random_disables_fault_ahead;
          Alcotest.test_case "never does io" `Quick test_fault_ahead_never_io;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "wire resolves cow" `Quick test_wire_fault_resolves_cow;
          Alcotest.test_case "vslock no fragmentation" `Quick test_vslock_no_fragmentation;
        ] );
    ]

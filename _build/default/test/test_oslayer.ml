(* The OS layer: program catalog, deterministic traces, process
   lifecycle, and the map-entry accounting Table 1 is built on. *)

module Vt = Vmiface.Vmtypes
module P = Oslayer.Programs

let test_trace_deterministic () =
  let t1 = Oslayer.Trace.command_trace P.ls in
  let t2 = Oslayer.Trace.command_trace P.ls in
  Alcotest.(check bool) "same trace twice" true (t1 = t2);
  let t3 = Oslayer.Trace.command_trace P.man in
  Alcotest.(check bool) "different commands differ" true (t1 <> t3)

let test_trace_covers_text () =
  let trace = Oslayer.Trace.command_trace P.ls in
  let text_pages =
    List.filter_map
      (function Oslayer.Trace.Seg_text, p, _ -> Some p | _ -> None)
      trace
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all text pages touched" P.ls.P.text_pages
    (List.length text_pages)

let test_trace_heap_writes () =
  let trace = Oslayer.Trace.command_trace P.cc in
  let heap_writes =
    List.filter
      (function Oslayer.Trace.Seg_heap, _, Vt.Write -> true | _ -> false)
      trace
  in
  Alcotest.(check int) "work pages written" P.cc.P.work_pages
    (List.length heap_writes)

module Lifecycle (V : Vmiface.Vm_sig.VM_SYS) = struct
  module Ps = Oslayer.Procsim.Make (V)

  let test_spawn_exit_balanced () =
    let sys = V.boot () in
    Ps.boot_kernel sys;
    let base_entries = Ps.live_entries sys [] in
    let mach = V.machine sys in
    let free0 = Physmem.free_count mach.Vmiface.Machine.physmem in
    let procs = List.map (fun p -> Ps.spawn sys p) P.[ cat; od; sh ] in
    Alcotest.(check bool) "entries grew" true (Ps.live_entries sys procs > base_entries);
    List.iter (fun p -> Ps.exit_proc sys p) procs;
    Alcotest.(check int) "all pages returned" free0
      (Physmem.free_count mach.Vmiface.Machine.physmem);
    Alcotest.(check int) "no leaked anon memory" 0 (V.leaked_pages sys)

  let test_exec_segments_mapped () =
    let sys = V.boot () in
    Ps.boot_kernel sys;
    let proc = Ps.spawn sys P.od in
    (* Text is executable/read-only; writing it must fault. *)
    (try
       V.write_bytes sys proc.Ps.vm
         ~addr:(proc.Ps.text.Ps.seg_vpn * 4096)
         (Bytes.of_string "x");
       Alcotest.fail "text must not be writable"
     with Vt.Segv { error = Vt.Prot_denied; _ } -> ());
    (* Data/bss/stack/heap are writable. *)
    List.iter
      (fun (seg : Ps.segment) ->
        V.write_bytes sys proc.Ps.vm ~addr:(seg.Ps.seg_vpn * 4096)
          (Bytes.of_string "w"))
      [ proc.Ps.data; proc.Ps.bss; proc.Ps.stack; proc.Ps.heap ];
    (* Dynamic od maps ld.so and libc. *)
    Alcotest.(check int) "two shared libs" 2 (List.length proc.Ps.lib_segs);
    Ps.exit_proc sys proc

  let test_replay_full_trace () =
    let sys = V.boot () in
    Ps.boot_kernel sys;
    let proc = Ps.spawn sys P.ls in
    Ps.replay sys proc (Oslayer.Trace.command_trace P.ls);
    Alcotest.(check bool) "resident set grew" true (V.resident_pages proc.Ps.vm > 10);
    Ps.exit_proc sys proc
end

module LU = Lifecycle (Uvm.Sys)
module LB = Lifecycle (Bsdvm.Sys)

let test_image_text_is_file_backed () =
  (* Two processes exec'ing the same binary share its text pages. *)
  let module Ps = Oslayer.Procsim.Make (Uvm.Sys) in
  let sys = Uvm.Sys.boot () in
  Ps.boot_kernel sys;
  let p1 = Ps.spawn sys P.sh in
  let p2 = Ps.spawn sys P.sh in
  Uvm.Sys.touch sys p1.Ps.vm ~vpn:p1.Ps.text.Ps.seg_vpn Vt.Read;
  Uvm.Sys.touch sys p2.Ps.vm ~vpn:p2.Ps.text.Ps.seg_vpn Vt.Read;
  let f1 = (Option.get (Pmap.lookup p1.Ps.vm.Uvm.Sys.pmap ~vpn:p1.Ps.text.Ps.seg_vpn)).Pmap.page in
  let f2 = (Option.get (Pmap.lookup p2.Ps.vm.Uvm.Sys.pmap ~vpn:p2.Ps.text.Ps.seg_vpn)).Pmap.page in
  Alcotest.(check int) "text frames shared" f1.Physmem.Page.id f2.Physmem.Page.id

let () =
  Alcotest.run "oslayer"
    [
      ( "traces",
        [
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "covers text" `Quick test_trace_covers_text;
          Alcotest.test_case "heap writes" `Quick test_trace_heap_writes;
        ] );
      ( "uvm lifecycle",
        [
          Alcotest.test_case "spawn/exit balanced" `Quick LU.test_spawn_exit_balanced;
          Alcotest.test_case "exec segments" `Quick LU.test_exec_segments_mapped;
          Alcotest.test_case "replay trace" `Quick LU.test_replay_full_trace;
        ] );
      ( "bsd lifecycle",
        [
          Alcotest.test_case "spawn/exit balanced" `Quick LB.test_spawn_exit_balanced;
          Alcotest.test_case "exec segments" `Quick LB.test_exec_segments_mapped;
          Alcotest.test_case "replay trace" `Quick LB.test_replay_full_trace;
        ] );
      ( "sharing",
        [ Alcotest.test_case "text file-backed" `Quick test_image_text_is_file_backed ] );
    ]

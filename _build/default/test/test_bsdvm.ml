(* The BSD VM baseline: core correctness (it must be a *working* VM
   system) plus the pathologies the paper attributes to it: shadow
   chains, the collapse operation, swap leaks, the 100-object cache, the
   two-step mapping window, and wiring-induced fragmentation. *)

module Vt = Vmiface.Vmtypes
module B = Bsdvm.Sys

let mk () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 1024; swap_pages = 2048 }
  in
  let sys = B.boot ~config () in
  (sys, B.new_vmspace sys)

let stats sys = (B.machine sys).Vmiface.Machine.stats
let write sys vm ~vpn s = B.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string s)
let read sys vm ~vpn n = Bytes.to_string (B.read_bytes sys vm ~addr:(vpn * 4096) ~len:n)

let test_basic_cow () =
  let sys, p = mk () in
  let z = B.mmap sys p ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys p ~vpn:z "parent";
  let c = B.fork sys p in
  write sys c ~vpn:z "child!";
  Alcotest.(check string) "parent intact" "parent" (read sys p ~vpn:z 6);
  Alcotest.(check string) "child own" "child!" (read sys c ~vpn:z 6);
  B.destroy_vmspace sys c;
  B.destroy_vmspace sys p

let test_shadow_chain_grows () =
  let sys, p = mk () in
  let vn = Vfs.create_file (B.machine sys).Vmiface.Machine.vfs ~name:"/ch" ~size:12288 in
  let z = B.mmap sys p ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private (Vt.File (vn, 0)) in
  write sys p ~vpn:(z + 1) "a";
  let shadows0 = (stats sys).Sim.Stats.shadow_objects_allocated in
  let c = B.fork sys p in
  write sys p ~vpn:(z + 1) "b";
  write sys c ~vpn:(z + 2) "c";
  (* Paper Figure 3: two more shadow objects were allocated. *)
  Alcotest.(check int) "two new shadows" (shadows0 + 2)
    (stats sys).Sim.Stats.shadow_objects_allocated;
  let e = Option.get (Bsdvm.Map.lookup p.B.map ~vpn:(z + 1)) in
  let chain = Bsdvm.Object.chain_length (Option.get e.Bsdvm.Map.obj) in
  Alcotest.(check bool) "chain of 3+ (shadow2->shadow1->vnode)" true (chain >= 3);
  B.destroy_vmspace sys c;
  B.destroy_vmspace sys p

let test_swap_leak_scenario () =
  (* The exact §5.3 leak: after the child exits, the middle page in the
     first shadow object is unreachable but still allocated. *)
  let sys, p = mk () in
  let vn = Vfs.create_file (B.machine sys).Vmiface.Machine.vfs ~name:"/leak" ~size:12288 in
  let z = B.mmap sys p ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private (Vt.File (vn, 0)) in
  write sys p ~vpn:(z + 1) "v1";
  let c = B.fork sys p in
  write sys p ~vpn:(z + 1) "v2";
  write sys c ~vpn:(z + 2) "cc";
  Alcotest.(check int) "no leak while both alive" 0 (B.leaked_pages sys);
  B.destroy_vmspace sys c;
  Alcotest.(check int) "one page leaked after child exit" 1 (B.leaked_pages sys);
  (* The leak is repaired only when a collapse happens to run; parent exit
     releases everything. *)
  B.destroy_vmspace sys p;
  Alcotest.(check int) "exit releases" 0 (B.leaked_pages sys)

let test_collapse_repairs_on_write () =
  let sys, p = mk () in
  let vn = Vfs.create_file (B.machine sys).Vmiface.Machine.vfs ~name:"/col" ~size:12288 in
  let z = B.mmap sys p ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private (Vt.File (vn, 0)) in
  write sys p ~vpn:(z + 1) "v1";
  let c = B.fork sys p in
  write sys p ~vpn:(z + 1) "v2";
  B.destroy_vmspace sys c;
  (* Child gone: the next COW write fault attempts a collapse, which can
     now merge the chain and free the redundant middle page. *)
  let succ0 = (stats sys).Sim.Stats.collapse_successes in
  write sys p ~vpn:z "xx";
  Alcotest.(check bool) "collapse succeeded" true
    ((stats sys).Sim.Stats.collapse_successes > succ0);
  Alcotest.(check int) "leak repaired" 0 (B.leaked_pages sys);
  Alcotest.(check string) "data correct after collapse" "v2" (read sys p ~vpn:(z + 1) 2)

let test_object_cache_limit () =
  let sys, vm = mk () in
  let vfs = (B.machine sys).Vmiface.Machine.vfs in
  (* Map and unmap 120 distinct files; the object cache holds only 100. *)
  for i = 0 to 119 do
    let vn = Vfs.create_file vfs ~name:(Printf.sprintf "/f%03d" i) ~size:4096 in
    let vpn = B.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
    B.touch sys vm ~vpn Vt.Read;
    B.munmap sys vm ~vpn ~npages:1;
    Vfs.vrele vfs vn
  done;
  Alcotest.(check int) "cache capped at 100" 100 (Bsdvm.Objcache.cached_count sys.B.cache);
  Alcotest.(check int) "20 evictions" 20 (stats sys).Sim.Stats.obj_cache_evictions;
  (* Re-mapping an evicted file re-reads from disk; a cached one doesn't. *)
  let ops0 = (stats sys).Sim.Stats.disk_read_ops in
  let vn = Vfs.lookup vfs ~name:"/f119" in
  let vpn = B.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  B.touch sys vm ~vpn Vt.Read;
  Alcotest.(check int) "cached file: no IO" ops0 (stats sys).Sim.Stats.disk_read_ops;
  B.munmap sys vm ~vpn ~npages:1;
  Vfs.vrele vfs vn;
  let vn0 = Vfs.lookup vfs ~name:"/f000" in
  let vpn0 = B.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn0, 0)) in
  B.touch sys vm ~vpn:vpn0 Vt.Read;
  Alcotest.(check bool) "evicted file re-read" true
    ((stats sys).Sim.Stats.disk_read_ops > ops0)

let test_cache_pins_vnodes () =
  let sys, vm = mk () in
  let vfs = (B.machine sys).Vmiface.Machine.vfs in
  let vn = Vfs.create_file vfs ~name:"/pinned" ~size:4096 in
  let vpn = B.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  B.touch sys vm ~vpn Vt.Read;
  B.munmap sys vm ~vpn ~npages:1;
  Vfs.vrele vfs vn;
  (* The VM object cache still holds a vnode reference, so the vnode is
     NOT on the vfs free list — the cross-layer conflict of paper §4. *)
  Alcotest.(check int) "vnode pinned by object cache" 1 vn.Vfs.Vnode.usecount;
  Alcotest.(check int) "not on free lru" 0 (Vfs.free_list_length vfs)

let test_two_step_window () =
  (* The paper's §3.1 security hole: between insert (default rw) and
     protect (ro), another thread can write through a mapping that was
     requested read-only. *)
  let sys, vm = mk () in
  let vfs = (B.machine sys).Vmiface.Machine.vfs in
  let vn = Vfs.create_file vfs ~name:"/secret" ~size:4096 in
  let sneaky_write_worked = ref false in
  sys.B.bsys.Bsdvm.State.two_step_probe <-
    Some
      (fun spage ->
        (* Runs between the two steps, like a second thread. *)
        try
          B.write_bytes sys vm ~addr:(spage * 4096) (Bytes.of_string "HACKED");
          sneaky_write_worked := true
        with Vt.Segv _ -> ());
  let vpn =
    B.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0))
  in
  sys.B.bsys.Bsdvm.State.two_step_probe <- None;
  Alcotest.(check bool) "window exploited" true !sneaky_write_worked;
  (* After establishment the mapping is read-only as requested... *)
  (try
     B.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "late");
     Alcotest.fail "late write should fail"
   with Vt.Segv _ -> ());
  (* ...but the damage is already in the shared object. *)
  Alcotest.(check string) "read-only data modified" "HACKED" (read sys vm ~vpn 6)

let test_uvm_has_no_window () =
  let sys = Uvm.Sys.boot () in
  let vm = Uvm.Sys.new_vmspace sys in
  let vfs = (Uvm.Sys.machine sys).Vmiface.Machine.vfs in
  let vn = Vfs.create_file vfs ~name:"/safe" ~size:4096 in
  (* UVM's single-step mapping: at no point is a read-only mapping
     writable.  There is no probe hook because there are no steps to hook
     between; writing after mmap must fail. *)
  let vpn =
    Uvm.Sys.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared
      (Vt.File (vn, 0))
  in
  try
    Uvm.Sys.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "nope");
    Alcotest.fail "write must be denied"
  with Vt.Segv { error = Vt.Prot_denied; _ } -> ()

let test_vslock_fragments_bsd () =
  let sys, vm = mk () in
  let vpn = B.mmap sys vm ~npages:8 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  let entries0 = B.map_entry_count vm in
  let wb = B.vslock sys vm ~vpn:(vpn + 3) ~npages:2 in
  Alcotest.(check int) "wiring fragments the map" (entries0 + 2) (B.map_entry_count vm);
  B.vsunlock sys vm wb;
  (* Fragmentation persists after unwiring (paper §3.2). *)
  Alcotest.(check int) "fragmentation persists" (entries0 + 2) (B.map_entry_count vm)

let test_no_fault_ahead () =
  let sys, vm = mk () in
  let vfs = (B.machine sys).Vmiface.Machine.vfs in
  let vn = Vfs.create_file vfs ~name:"/nfa" ~size:(16 * 4096) in
  let vpn = B.mmap sys vm ~npages:16 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  B.access_range sys vm ~vpn ~npages:16 Vt.Read;
  (* Every page is its own fault under BSD. *)
  Alcotest.(check int) "16 faults for 16 pages" 16 (stats sys).Sim.Stats.faults

let test_bsd_paging_roundtrip () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 128; swap_pages = 2048 }
  in
  let sys = B.boot ~config () in
  let vm = B.new_vmspace sys in
  let n = 300 in
  let vpn = B.mmap sys vm ~npages:n ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  for i = 0 to n - 1 do
    B.write_bytes sys vm ~addr:((vpn + i) * 4096)
      (Bytes.of_string (Printf.sprintf "b%04d" i))
  done;
  for i = 0 to n - 1 do
    let got = B.read_bytes sys vm ~addr:((vpn + i) * 4096) ~len:5 in
    Alcotest.(check bytes) (Printf.sprintf "page %d" i)
      (Bytes.of_string (Printf.sprintf "b%04d" i)) got
  done;
  (* One write op per page: no clustering. *)
  let st = stats sys in
  Alcotest.(check bool) "unclustered writes" true
    (st.Sim.Stats.disk_write_ops >= st.Sim.Stats.pageouts);
  B.destroy_vmspace sys vm;
  Alcotest.(check int) "swap released" 0 (B.swap_slots_in_use sys)

let test_private_read_allocates_shadow () =
  (* Table 3's note: BSD allocates a shadow object even for read faults on
     private mappings. *)
  let sys, vm = mk () in
  let vfs = (B.machine sys).Vmiface.Machine.vfs in
  let vn = Vfs.create_file vfs ~name:"/rp" ~size:4096 in
  let shadows0 = (stats sys).Sim.Stats.shadow_objects_allocated in
  let vpn = B.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Private (Vt.File (vn, 0)) in
  B.touch sys vm ~vpn Vt.Read;
  Alcotest.(check int) "shadow allocated on read" (shadows0 + 1)
    (stats sys).Sim.Stats.shadow_objects_allocated

let test_pager_structs_allocated () =
  let sys, vm = mk () in
  let vfs = (B.machine sys).Vmiface.Machine.vfs in
  let vn = Vfs.create_file vfs ~name:"/pg" ~size:4096 in
  let pagers0 = (stats sys).Sim.Stats.pager_structs_allocated in
  ignore (B.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)));
  (* vm_pager + vn_pager (Figure 4). *)
  Alcotest.(check int) "two pager structs" (pagers0 + 2)
    (stats sys).Sim.Stats.pager_structs_allocated;
  (* UVM allocates none for the same operation. *)
  let usys = Uvm.Sys.boot () in
  let uvm = Uvm.Sys.new_vmspace usys in
  let uvfs = (Uvm.Sys.machine usys).Vmiface.Machine.vfs in
  let uvn = Vfs.create_file uvfs ~name:"/pg" ~size:4096 in
  ignore
    (Uvm.Sys.mmap usys uvm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared
       (Vt.File (uvn, 0)));
  Alcotest.(check int) "uvm: zero pager structs" 0
    ((Uvm.Sys.machine usys).Vmiface.Machine.stats).Sim.Stats.pager_structs_allocated

let () =
  Alcotest.run "bsdvm"
    [
      ( "correctness",
        [
          Alcotest.test_case "cow" `Quick test_basic_cow;
          Alcotest.test_case "paging roundtrip" `Quick test_bsd_paging_roundtrip;
        ] );
      ( "chains",
        [
          Alcotest.test_case "shadow chain grows" `Quick test_shadow_chain_grows;
          Alcotest.test_case "swap leak" `Quick test_swap_leak_scenario;
          Alcotest.test_case "collapse repairs" `Quick test_collapse_repairs_on_write;
          Alcotest.test_case "shadow on private read" `Quick test_private_read_allocates_shadow;
        ] );
      ( "object cache",
        [
          Alcotest.test_case "100 limit" `Quick test_object_cache_limit;
          Alcotest.test_case "pins vnodes" `Quick test_cache_pins_vnodes;
          Alcotest.test_case "pager structs" `Quick test_pager_structs_allocated;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "two-step window" `Quick test_two_step_window;
          Alcotest.test_case "uvm has no window" `Quick test_uvm_has_no_window;
          Alcotest.test_case "vslock fragments" `Quick test_vslock_fragments_bsd;
          Alcotest.test_case "no fault-ahead" `Quick test_no_fault_ahead;
        ] );
    ]

(* Integration tests over the experiment harness: every reproduced table
   and figure must show the paper's qualitative result (who wins, where
   the crossovers are).  The heavyweight figures run on reduced inputs in
   the bench harness; here we assert the directions on the real ones that
   are cheap, and the component claims on the others. *)

let test_table1_direction () =
  let rows = Experiments.Table1.run () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun (label, bsd, uvm) ->
      Alcotest.(check bool) (label ^ ": BSD uses more entries") true (bsd > uvm))
    rows;
  (* The paper's headline numbers for UVM hold exactly. *)
  let _, _, uvm_cat = List.nth rows 0 in
  let _, _, uvm_od = List.nth rows 1 in
  Alcotest.(check int) "cat: 6 entries under UVM (paper)" 6 uvm_cat;
  Alcotest.(check int) "od: 12 entries under UVM (paper)" 12 uvm_od

let test_table2_direction () =
  let rows = Experiments.Table2.run () in
  List.iter
    (fun (label, bsd, uvm) ->
      let r = float_of_int bsd /. float_of_int uvm in
      Alcotest.(check bool)
        (Printf.sprintf "%s: UVM faults ~half (ratio %.2f)" label r)
        true
        (r > 1.3 && r < 3.0))
    rows

let test_table3_direction () =
  let rows = Experiments.Table3.run () in
  Alcotest.(check int) "six cases" 6 (List.length rows);
  List.iter
    (fun (label, bsd, uvm) ->
      Alcotest.(check bool) (label ^ ": UVM no slower") true (uvm <= bsd +. 1e-9))
    rows;
  (* Private read faults: BSD's needless shadow allocation makes the gap
     large (paper: 48 vs 22). *)
  let _, bsd_pr, uvm_pr =
    List.find (fun (l, _, _) -> l = "read/private file") rows
  in
  Alcotest.(check bool) "private read gap > 1.5x" true (bsd_pr > 1.5 *. uvm_pr)

let test_swapleak () =
  let steps = Experiments.Swapleak.run () in
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Experiments.Swapleak.step_name ^ ": UVM never leaks")
        0 s.Experiments.Swapleak.uvm_leak)
    steps;
  let after_exit = List.nth steps 2 in
  Alcotest.(check bool) "BSD leaks after child exit" true
    (after_exit.Experiments.Swapleak.bsd_leak > 0)

let test_datamove () =
  let rows = Experiments.Datamove.run () in
  let one = List.hd rows in
  let big = List.nth rows (List.length rows - 1) in
  let gain r =
    Experiments.Datamove.improvement r.Experiments.Datamove.copy_us
      r.Experiments.Datamove.loan_us
  in
  Alcotest.(check bool) "1 page: ~26% (paper)" true
    (gain one > 15.0 && gain one < 40.0);
  Alcotest.(check bool) "256 pages: ~78% (paper)" true
    (gain big > 65.0 && gain big < 90.0);
  List.iter
    (fun r ->
      Alcotest.(check bool) "loan never slower than copy" true
        (r.Experiments.Datamove.loan_us <= r.Experiments.Datamove.copy_us))
    rows

let test_fig6_shape () =
  let r = Experiments.Fig6.run () in
  (* Linear growth, BSD above UVM in the touched case. *)
  List.iter
    (fun (mb, bsd, uvm) ->
      if mb > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "touched %dMB: BSD slower" mb)
          true (bsd > uvm))
    r.Experiments.Fig6.touched;
  let _, bsd0, _ = List.hd r.Experiments.Fig6.touched in
  let _, bsd15, _ = List.nth r.Experiments.Fig6.touched 8 in
  Alcotest.(check bool) "grows with size" true (bsd15 > 5.0 *. bsd0)

(* Figures 2 and 5 at full scale run in the bench harness; here a reduced
   version checks the crossover positions. *)
let test_fig2_cliff_components () =
  (* Below the 100-object limit both systems stay off the disk in steady
     state; past it, BSD pays I/O.  Checked through the harness rows. *)
  let module F = Experiments.Fig2 in
  let rows = F.run () in
  let below = List.filter (fun (n, _, _) -> n <= 100) rows in
  let above = List.filter (fun (n, _, _) -> n > 100) rows in
  List.iter
    (fun (n, bsd, _) ->
      Alcotest.(check bool) (Printf.sprintf "%d files: BSD fast" n) true (bsd < 0.1e6))
    below;
  List.iter
    (fun (n, bsd, uvm) ->
      Alcotest.(check bool) (Printf.sprintf "%d files: BSD cliff" n) true
        (bsd > 1e6 && bsd > 50.0 *. uvm))
    above;
  List.iter
    (fun (n, _, uvm) ->
      Alcotest.(check bool) (Printf.sprintf "%d files: UVM flat" n) true (uvm < 0.1e6))
    rows

let test_fig5_crossover () =
  let rows = Experiments.Fig5.run () in
  List.iter
    (fun (mb, bsd, uvm) ->
      if mb <= 28 then
        Alcotest.(check bool)
          (Printf.sprintf "%dMB: both fast in RAM" mb)
          true
          (bsd < 1e6 && uvm < 1e6)
      else
        Alcotest.(check bool)
          (Printf.sprintf "%dMB: UVM pages out faster" mb)
          true (bsd > 2.0 *. uvm))
    rows

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "table1" `Slow test_table1_direction;
          Alcotest.test_case "table2" `Slow test_table2_direction;
          Alcotest.test_case "table3" `Slow test_table3_direction;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig2 cliff" `Slow test_fig2_cliff_components;
          Alcotest.test_case "fig5 crossover" `Slow test_fig5_crossover;
          Alcotest.test_case "fig6 shape" `Slow test_fig6_shape;
        ] );
      ( "mechanisms",
        [
          Alcotest.test_case "swap leak" `Quick test_swapleak;
          Alcotest.test_case "data movement" `Quick test_datamove;
        ] );
    ]

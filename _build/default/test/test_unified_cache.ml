(* UVM's unified cache (paper §4): file data persists in the vnode's
   embedded object exactly as long as the vnode stays in core — no second
   cache, no 100-object limit, and recycling the vnode tears the object
   down through the hook. *)

module Vt = Vmiface.Vmtypes
module S = Uvm.Sys

let mk ?(max_vnodes = 2048) () =
  let config = { Vmiface.Machine.default_config with max_vnodes } in
  let sys = S.boot ~config () in
  (sys, S.new_vmspace sys)

let stats sys = (S.machine sys).Vmiface.Machine.stats
let vfs sys = (S.machine sys).Vmiface.Machine.vfs

let test_pages_persist_after_unmap () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/p" ~size:16384 in
  let vpn = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.access_range sys vm ~vpn ~npages:4 Vt.Read;
  S.munmap sys vm ~vpn ~npages:4;
  (* The object still rides in the vnode with its pages. *)
  (match Uvm.Vnode_pager.uvn_of_vnode vn with
  | Some uvn ->
      Alcotest.(check int) "no mappings" 0 uvn.Uvm.Vnode_pager.obj.Uvm.Object.refs;
      Alcotest.(check int) "pages persist" 4
        (Uvm.Object.resident_count uvn.Uvm.Vnode_pager.obj)
  | None -> Alcotest.fail "object should persist");
  (* Remapping needs no disk I/O. *)
  let ops0 = (stats sys).Sim.Stats.disk_read_ops in
  let vpn2 = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.access_range sys vm ~vpn:vpn2 ~npages:4 Vt.Read;
  Alcotest.(check int) "warm remap: zero reads" ops0 (stats sys).Sim.Stats.disk_read_ops;
  Alcotest.(check bool) "cache hit counted" true ((stats sys).Sim.Stats.obj_cache_hits > 0)

let test_vnode_holds_no_extra_ref_when_unmapped () =
  let sys, vm = mk () in
  let vn = Vfs.create_file (vfs sys) ~name:"/r" ~size:4096 in
  let vpn = S.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  Alcotest.(check int) "mapped: uvn holds a vref" 2 vn.Vfs.Vnode.usecount;
  S.munmap sys vm ~vpn ~npages:1;
  (* Unlike BSD VM's object cache, nothing pins the vnode now. *)
  Alcotest.(check int) "unmapped: only the open ref" 1 vn.Vfs.Vnode.usecount;
  Vfs.vrele (vfs sys) vn;
  Alcotest.(check int) "vnode free for recycling" 1 (Vfs.free_list_length (vfs sys))

let test_recycle_hook_frees_pages () =
  (* A tiny vnode cache: recycling must terminate the embedded object and
     free its pages. *)
  let sys, vm = mk ~max_vnodes:2 () in
  let physmem = (S.machine sys).Vmiface.Machine.physmem in
  let vn = Vfs.create_file (vfs sys) ~name:"/a" ~size:16384 in
  let vpn = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.access_range sys vm ~vpn ~npages:4 Vt.Read;
  S.munmap sys vm ~vpn ~npages:4;
  Vfs.vrele (vfs sys) vn;
  let free0 = Physmem.free_count physmem in
  (* Force recycling by cycling other vnodes through the cache. *)
  let b = Vfs.create_file (vfs sys) ~name:"/b" ~size:4096 in
  Vfs.vrele (vfs sys) b;
  let c = Vfs.create_file (vfs sys) ~name:"/c" ~size:4096 in
  Vfs.vrele (vfs sys) c;
  Alcotest.(check bool) "vnode /a recycled" true
    ((stats sys).Sim.Stats.vnode_recycles > 0);
  Alcotest.(check bool) "its file pages were freed" true
    (Physmem.free_count physmem >= free0 + 4);
  Alcotest.(check bool) "vm_private cleared" true
    (Uvm.Vnode_pager.uvn_of_vnode vn = None)

let test_dirty_shared_pages_flushed_on_recycle () =
  let sys, vm = mk ~max_vnodes:2 () in
  let vn = Vfs.create_file (vfs sys) ~name:"/d" ~size:8192 in
  let vpn = S.mmap sys vm ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "durable");
  S.munmap sys vm ~vpn ~npages:2;
  Vfs.vrele (vfs sys) vn;
  (* Recycle /d by cache pressure; the dirty page must reach the file. *)
  let x = Vfs.create_file (vfs sys) ~name:"/x" ~size:4096 in
  Vfs.vrele (vfs sys) x;
  let y = Vfs.create_file (vfs sys) ~name:"/y" ~size:4096 in
  Vfs.vrele (vfs sys) y;
  Alcotest.(check string) "write-back on terminate" "durable"
    (Bytes.to_string (Bytes.sub vn.Vfs.Vnode.data 0 7));
  (* And a fresh mapping reads the flushed data back from "disk". *)
  let vn2 = Vfs.lookup (vfs sys) ~name:"/d" in
  let vpn2 = S.mmap sys vm ~npages:2 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn2, 0)) in
  Alcotest.(check string) "round-trip through recycle" "durable"
    (Bytes.to_string (S.read_bytes sys vm ~addr:(vpn2 * 4096) ~len:7))

let test_mapped_vnode_cannot_be_recycled () =
  let sys, vm = mk ~max_vnodes:1 () in
  let vn = Vfs.create_file (vfs sys) ~name:"/held" ~size:4096 in
  let vpn = S.mmap sys vm ~npages:1 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  S.touch sys vm ~vpn Vt.Read;
  Vfs.vrele (vfs sys) vn (* drop the open ref; the mapping's ref remains *);
  (* Cache pressure cannot evict a mapped vnode. *)
  let z = Vfs.create_file (vfs sys) ~name:"/z" ~size:4096 in
  Vfs.vrele (vfs sys) z;
  Alcotest.(check bool) "still in core" true vn.Vfs.Vnode.incore;
  Alcotest.(check string) "mapping still valid"
    (String.make 1 (Vfs.file_byte ~name:"/held" ~off:0))
    (Bytes.to_string (S.read_bytes sys vm ~addr:(vpn * 4096) ~len:1))

let () =
  Alcotest.run "unified_cache"
    [
      ( "persistence",
        [
          Alcotest.test_case "pages persist after unmap" `Quick test_pages_persist_after_unmap;
          Alcotest.test_case "no extra vnode ref" `Quick test_vnode_holds_no_extra_ref_when_unmapped;
          Alcotest.test_case "mapped vnode pinned" `Quick test_mapped_vnode_cannot_be_recycled;
        ] );
      ( "recycling",
        [
          Alcotest.test_case "hook frees pages" `Quick test_recycle_hook_frees_pages;
          Alcotest.test_case "dirty flush on recycle" `Quick test_dirty_shared_pages_flushed_on_recycle;
        ] );
    ]

test/test_sim.ml: Alcotest Array Fun List QCheck QCheck_alcotest Sim

test/test_uvm_map.mli:

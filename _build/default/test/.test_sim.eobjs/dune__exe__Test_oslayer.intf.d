test/test_oslayer.mli:

test/test_vfs.ml: Alcotest Bytes Char Fun List Physmem Sim Vfs

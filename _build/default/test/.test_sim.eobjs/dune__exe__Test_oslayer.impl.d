test/test_oslayer.ml: Alcotest Bsdvm Bytes List Option Oslayer Physmem Pmap Uvm Vmiface

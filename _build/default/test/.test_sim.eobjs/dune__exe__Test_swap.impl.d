test/test_swap.ml: Alcotest Bytes List Option Physmem QCheck QCheck_alcotest Sim Swap

test/test_fork.mli:

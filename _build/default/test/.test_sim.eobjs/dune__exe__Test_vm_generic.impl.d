test/test_vm_generic.ml: Alcotest Array Bsdvm Bytes Char Fun List Pmap Printf QCheck QCheck_alcotest Sim Uvm Vfs Vmiface

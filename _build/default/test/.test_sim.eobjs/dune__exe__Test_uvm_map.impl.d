test/test_uvm_map.ml: Alcotest List Option Pmap QCheck QCheck_alcotest Sim Uvm Vfs Vmiface

test/test_pmap.ml: Alcotest Array List Physmem Pmap QCheck QCheck_alcotest Sim

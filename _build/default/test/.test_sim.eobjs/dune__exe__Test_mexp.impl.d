test/test_mexp.ml: Alcotest Bytes Pmap Sim Uvm Vfs Vmiface

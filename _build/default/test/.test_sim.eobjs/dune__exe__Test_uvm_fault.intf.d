test/test_uvm_fault.mli:

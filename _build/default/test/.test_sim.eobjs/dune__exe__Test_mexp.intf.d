test/test_mexp.mli:

test/test_vfs.mli:

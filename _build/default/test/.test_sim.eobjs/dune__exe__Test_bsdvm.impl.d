test/test_bsdvm.ml: Alcotest Bsdvm Bytes Option Pmap Printf Sim Uvm Vfs Vmiface

test/test_vm_generic.mli:

test/test_bsdvm.mli:

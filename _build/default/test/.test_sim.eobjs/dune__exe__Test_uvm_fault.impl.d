test/test_uvm_fault.ml: Alcotest Bytes Option Physmem Pmap Sim Uvm Vfs Vmiface

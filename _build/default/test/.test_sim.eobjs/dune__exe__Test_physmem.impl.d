test/test_physmem.ml: Alcotest Bytes List Physmem QCheck QCheck_alcotest Sim

test/test_pdaemon.mli:

test/test_loan.mli:

test/test_swap.mli:

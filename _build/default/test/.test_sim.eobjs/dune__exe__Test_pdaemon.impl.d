test/test_pdaemon.ml: Alcotest Bsdvm Bytes Option Physmem Pmap Printf Sim Uvm Vmiface

test/test_device.ml: Alcotest Array Bsdvm Bytes Option Oslayer Physmem Pmap Sim Uvm Vmiface

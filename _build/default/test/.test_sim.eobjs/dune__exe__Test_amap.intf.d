test/test_amap.mli:

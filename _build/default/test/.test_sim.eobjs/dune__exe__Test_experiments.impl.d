test/test_experiments.ml: Alcotest Experiments List Printf

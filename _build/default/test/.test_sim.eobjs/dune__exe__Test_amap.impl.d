test/test_amap.ml: Alcotest Array Bytes List Option Physmem Pmap QCheck QCheck_alcotest Sim Swap Uvm Vmiface

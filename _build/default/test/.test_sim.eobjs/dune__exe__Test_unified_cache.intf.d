test/test_unified_cache.mli:

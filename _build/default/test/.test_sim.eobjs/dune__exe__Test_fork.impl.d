test/test_fork.ml: Alcotest Array Bytes Char Fun List Pmap Printf QCheck QCheck_alcotest Sim String Uvm Vfs Vmiface

test/test_physmem.mli:

test/test_unified_cache.ml: Alcotest Bytes Physmem Pmap Sim String Uvm Vfs Vmiface

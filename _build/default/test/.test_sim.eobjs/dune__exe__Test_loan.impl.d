test/test_loan.ml: Alcotest Bytes List Physmem Pmap Sim Uvm Vfs Vmiface

test/test_pmap.mli:

(* Page transfer and map-entry passing (paper §7). *)

module Vt = Vmiface.Vmtypes
module S = Uvm.Sys

let mk () =
  let sys = S.boot () in
  (sys, S.new_vmspace sys, S.new_vmspace sys)

let write sys vm ~vpn s = S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string s)
let read sys vm ~vpn n = Bytes.to_string (S.read_bytes sys vm ~addr:(vpn * 4096) ~len:n)
let stats sys = (S.machine sys).Vmiface.Machine.stats

let test_page_transfer () =
  let sys, src, dst = mk () in
  let vpn = S.mmap sys src ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys src ~vpn "page-zero";
  write sys src ~vpn:(vpn + 2) "page-two!";
  let copies0 = (stats sys).Sim.Stats.pages_copied in
  let dvpn = Uvm.page_transfer src ~vpn ~npages:3 ~dst ~prot:Pmap.Prot.rw in
  Alcotest.(check int) "zero copies" copies0 (stats sys).Sim.Stats.pages_copied;
  Alcotest.(check string) "receiver sees data" "page-zero" (read sys dst ~vpn:dvpn 9);
  Alcotest.(check string) "third page too" "page-two!" (read sys dst ~vpn:(dvpn + 2) 9);
  (* Transferred memory is ordinary anonymous memory: receiver writes COW
     away from the source. *)
  write sys dst ~vpn:dvpn "MINE!!!!!";
  Alcotest.(check string) "source isolated" "page-zero" (read sys src ~vpn 9);
  S.destroy_vmspace sys src;
  Alcotest.(check string) "receiver survives source exit" "MINE!!!!!"
    (read sys dst ~vpn:dvpn 9)

let test_mexp_share () =
  let sys, src, dst = mk () in
  let vpn = S.mmap sys src ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys src ~vpn "alpha";
  let dvpn = Uvm.mexp_extract src ~vpn ~npages:4 ~dst Uvm.Mexp.Share in
  Alcotest.(check string) "receiver reads" "alpha" (read sys dst ~vpn:dvpn 5);
  write sys dst ~vpn:dvpn "bravo";
  Alcotest.(check string) "writes visible to source" "bravo" (read sys src ~vpn 5);
  write sys src ~vpn:(vpn + 1) "gamma";
  Alcotest.(check string) "and back" "gamma" (read sys dst ~vpn:(dvpn + 1) 5)

let test_mexp_copy () =
  let sys, src, dst = mk () in
  let vpn = S.mmap sys src ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys src ~vpn "before";
  let dvpn = Uvm.mexp_extract src ~vpn ~npages:2 ~dst Uvm.Mexp.Copy in
  write sys src ~vpn "after!";
  Alcotest.(check string) "receiver keeps snapshot" "before" (read sys dst ~vpn:dvpn 6);
  write sys dst ~vpn:dvpn "theirs";
  Alcotest.(check string) "source keeps its own" "after!" (read sys src ~vpn 6)

let test_mexp_donate () =
  let sys, src, dst = mk () in
  let vpn = S.mmap sys src ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys src ~vpn "moving";
  let entries0 = S.map_entry_count src in
  let dvpn = Uvm.mexp_extract src ~vpn ~npages:2 ~dst Uvm.Mexp.Donate in
  Alcotest.(check string) "receiver has it" "moving" (read sys dst ~vpn:dvpn 6);
  Alcotest.(check int) "source entry gone" (entries0 - 1) (S.map_entry_count src);
  try
    S.touch sys src ~vpn Vt.Read;
    Alcotest.fail "source should have lost the range"
  with Vt.Segv { error = Vt.No_entry; _ } -> ()

let test_mexp_partial_range_fragments () =
  let sys, src, dst = mk () in
  let vpn = S.mmap sys src ~npages:10 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys src ~vpn:(vpn + 4) "middle";
  let entries0 = S.map_entry_count src in
  let dvpn = Uvm.mexp_extract src ~vpn:(vpn + 3) ~npages:3 ~dst Uvm.Mexp.Share in
  (* Sharing the middle of an entry clips it — the paper's caveat about
     map fragmentation from entry passing on small ranges. *)
  Alcotest.(check int) "source fragmented" (entries0 + 2) (S.map_entry_count src);
  Alcotest.(check string) "shared window" "middle" (read sys dst ~vpn:(dvpn + 1) 6)

let test_mexp_hole_rejected () =
  let sys, src, dst = mk () in
  let vpn = S.mmap sys src ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  Alcotest.check_raises "holes rejected"
    (Invalid_argument "Uvm_mexp.extract: source range has unmapped holes")
    (fun () -> ignore (Uvm.mexp_extract src ~vpn ~npages:10 ~dst Uvm.Mexp.Share))

let test_transfer_from_file_mapping () =
  let sys, src, dst = mk () in
  let vn =
    Vfs.create_file (S.machine sys).Vmiface.Machine.vfs ~name:"/tf" ~size:8192
  in
  let vpn = S.mmap sys src ~npages:2 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  let dvpn = Uvm.page_transfer src ~vpn ~npages:2 ~dst ~prot:Pmap.Prot.rw in
  Alcotest.(check char) "file page transferred" (Vfs.file_byte ~name:"/tf" ~off:9)
    (Bytes.get (S.read_bytes sys dst ~addr:((dvpn * 4096) + 9) ~len:1) 0);
  (* Receiver writes: becomes private anonymous memory; file unchanged. *)
  write sys dst ~vpn:dvpn "own";
  Alcotest.(check char) "file intact" (Vfs.file_byte ~name:"/tf" ~off:0)
    (Bytes.get vn.Vfs.Vnode.data 0)


(* Regression: a COW replace inside a shared amap (possible when a page
   transfer made the anon multi-referenced) must not leave other sharers
   reading the displaced page. *)
let test_share_after_transfer_stays_coherent () =
  let sys, src, dst = mk () in
  let vpn = S.mmap sys src ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  write sys src ~vpn "original";
  (* Transfer bumps the anon's refcount. *)
  let consumer2 = S.new_vmspace sys in
  let tvpn = Uvm.page_transfer src ~vpn ~npages:1 ~dst:consumer2 ~prot:Pmap.Prot.rw in
  (* Now share the range; the sharer's write COWs (refs > 1) and replaces
     the anon in the shared amap. *)
  let dvpn = Uvm.mexp_extract src ~vpn ~npages:1 ~dst Uvm.Mexp.Share in
  write sys dst ~vpn:dvpn "mutually";
  Alcotest.(check string) "source sees the sharer's write" "mutually"
    (read sys src ~vpn 8);
  write sys src ~vpn "two-way!";
  Alcotest.(check string) "and back" "two-way!" (read sys dst ~vpn:dvpn 8);
  Alcotest.(check string) "transferred copy kept its snapshot" "original"
    (read sys consumer2 ~vpn:tvpn 8)

let () =
  Alcotest.run "mexp"
    [
      ( "page transfer",
        [
          Alcotest.test_case "anon transfer" `Quick test_page_transfer;
          Alcotest.test_case "from file mapping" `Quick test_transfer_from_file_mapping;
        ] );
      ( "map-entry passing",
        [
          Alcotest.test_case "share" `Quick test_mexp_share;
          Alcotest.test_case "copy" `Quick test_mexp_copy;
          Alcotest.test_case "donate" `Quick test_mexp_donate;
          Alcotest.test_case "fragmentation" `Quick test_mexp_partial_range_fragments;
          Alcotest.test_case "holes rejected" `Quick test_mexp_hole_rejected;
          Alcotest.test_case "share after transfer coherent" `Quick
            test_share_after_transfer_stays_coherent;
        ] );
    ]


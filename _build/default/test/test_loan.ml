(* Page loanout (paper §7): zero-copy lending to the kernel, COW
   preservation, owner-exit survival, and loans of object pages. *)

module Vt = Vmiface.Vmtypes
module S = Uvm.Sys

let mk () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 512; swap_pages = 1024 }
  in
  let sys = S.boot ~config () in
  (sys, S.new_vmspace sys)

let stats sys = (S.machine sys).Vmiface.Machine.stats

let test_loan_shares_frames () =
  let sys, vm = mk () in
  let vpn = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "lend-me");
  let copies0 = (stats sys).Sim.Stats.pages_copied in
  let loan = Uvm.loan_to_kernel vm ~vpn ~npages:4 in
  Alcotest.(check int) "no copying" copies0 (stats sys).Sim.Stats.pages_copied;
  let pages = Uvm.Loan.pages loan in
  Alcotest.(check int) "four frames" 4 (List.length pages);
  let first = List.hd pages in
  Alcotest.(check string) "kernel sees user data" "lend-me"
    (Bytes.to_string (Bytes.sub first.Physmem.Page.data 0 7));
  Alcotest.(check bool) "wired for DMA" true (first.Physmem.Page.wire_count > 0);
  Alcotest.(check bool) "loan counted" true (first.Physmem.Page.loan_count > 0);
  Uvm.loan_finish sys loan;
  Alcotest.(check int) "loan ended" 0 first.Physmem.Page.loan_count;
  Alcotest.(check int) "unwired" 0 first.Physmem.Page.wire_count

let test_owner_write_breaks_loan () =
  let sys, vm = mk () in
  let vpn = S.mmap sys vm ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "original");
  let loan = Uvm.loan_to_kernel vm ~vpn ~npages:1 in
  let kpage = List.hd (Uvm.Loan.pages loan) in
  (* Owner writes while the loan is out: COW must give the owner a fresh
     page, leaving the kernel's view intact. *)
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "CHANGED!");
  Alcotest.(check string) "kernel still sees original" "original"
    (Bytes.to_string (Bytes.sub kpage.Physmem.Page.data 0 8));
  Alcotest.(check string) "owner sees new data" "CHANGED!"
    (Bytes.to_string (S.read_bytes sys vm ~addr:(vpn * 4096) ~len:8));
  Uvm.loan_finish sys loan

let test_owner_exit_during_loan () =
  let sys, vm = mk () in
  let vpn = S.mmap sys vm ~npages:2 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "survive");
  let loan = Uvm.loan_to_kernel vm ~vpn ~npages:2 in
  let kpage = List.hd (Uvm.Loan.pages loan) in
  let free0 = Physmem.free_count (Uvm.State.physmem sys.S.usys) in
  S.destroy_vmspace sys vm;
  (* The loaned frames must not be freed while the kernel holds them. *)
  Alcotest.(check string) "data survives owner exit" "survive"
    (Bytes.to_string (Bytes.sub kpage.Physmem.Page.data 0 7));
  Uvm.loan_finish sys loan;
  Alcotest.(check bool) "frames freed after loan ends" true
    (Physmem.free_count (Uvm.State.physmem sys.S.usys) > free0)

let test_loan_object_pages () =
  let sys, vm = mk () in
  let vn =
    Vfs.create_file (S.machine sys).Vmiface.Machine.vfs ~name:"/lo" ~size:8192
  in
  let vpn = S.mmap sys vm ~npages:2 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  let loan = Uvm.loan_to_kernel vm ~vpn ~npages:2 in
  let kpage = List.hd (Uvm.Loan.pages loan) in
  Alcotest.(check char) "file data via loan" (Vfs.file_byte ~name:"/lo" ~off:3)
    (Bytes.get kpage.Physmem.Page.data 3);
  Uvm.loan_finish sys loan

let test_loaned_pages_not_paged_out () =
  let config =
    { Vmiface.Machine.default_config with ram_pages = 128; swap_pages = 1024 }
  in
  let sys = S.boot ~config () in
  let vm = S.new_vmspace sys in
  let vpn = S.mmap sys vm ~npages:1 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "nailed");
  let loan = Uvm.loan_to_kernel vm ~vpn ~npages:1 in
  let kpage = List.hd (Uvm.Loan.pages loan) in
  (* Memory pressure. *)
  let big = S.mmap sys vm ~npages:300 ~prot:Pmap.Prot.rw ~share:Vt.Private Vt.Zero in
  for i = 0 to 299 do
    S.write_bytes sys vm ~addr:((big + i) * 4096) (Bytes.of_string "z")
  done;
  Alcotest.(check string) "loaned frame untouched by daemon" "nailed"
    (Bytes.to_string (Bytes.sub kpage.Physmem.Page.data 0 6));
  Uvm.loan_finish sys loan

let test_loan_faults_in_nonresident () =
  let sys, vm = mk () in
  let vn =
    Vfs.create_file (S.machine sys).Vmiface.Machine.vfs ~name:"/nr" ~size:16384
  in
  let vpn = S.mmap sys vm ~npages:4 ~prot:Pmap.Prot.read ~share:Vt.Shared (Vt.File (vn, 0)) in
  (* No touch first: the loan path must fault the pages in itself. *)
  let loan = Uvm.loan_to_kernel vm ~vpn ~npages:4 in
  Alcotest.(check int) "all four loaned" 4 (List.length (Uvm.Loan.pages loan));
  Uvm.loan_finish sys loan

let () =
  Alcotest.run "loan"
    [
      ( "kernel loans",
        [
          Alcotest.test_case "shares frames" `Quick test_loan_shares_frames;
          Alcotest.test_case "COW preserved" `Quick test_owner_write_breaks_loan;
          Alcotest.test_case "owner exit" `Quick test_owner_exit_during_loan;
          Alcotest.test_case "object pages" `Quick test_loan_object_pages;
          Alcotest.test_case "not paged out" `Quick test_loaned_pages_not_paged_out;
          Alcotest.test_case "faults in" `Quick test_loan_faults_in_nonresident;
        ] );
    ]

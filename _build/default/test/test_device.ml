(* The device pager (paper §6's ROM example) and process swapping
   (§3.2's user-structure wiring case). *)

module Vt = Vmiface.Vmtypes
module S = Uvm.Sys

let mk () =
  let sys = S.boot () in
  (sys, S.new_vmspace sys)

let stats sys = (S.machine sys).Vmiface.Machine.stats

let rom_bytes =
  let b = Bytes.create (3 * 4096) in
  Bytes.fill b 0 (Bytes.length b) '\xAA';
  Bytes.blit_string "BOOTROM-V1" 0 b 0 10;
  Bytes.blit_string "VECTORS" 0 b 4096 7;
  b

let test_rom_mapping () =
  let sys, vm = mk () in
  let dev = Uvm.Device.create_rom sys.S.usys ~name:"rom0" ~contents:rom_bytes in
  Alcotest.(check int) "rom pages" 3 (Uvm.Device.npages dev);
  let obj = Uvm.Device.attach sys.S.usys dev in
  let ops0 = (stats sys).Sim.Stats.disk_read_ops in
  let vpn = Uvm.map_object sys vm ~obj ~npages:3 ~prot:Pmap.Prot.rx ~share:Vt.Shared in
  Alcotest.(check string) "rom contents" "BOOTROM-V1"
    (Bytes.to_string (S.read_bytes sys vm ~addr:(vpn * 4096) ~len:10));
  Alcotest.(check string) "second page" "VECTORS"
    (Bytes.to_string (S.read_bytes sys vm ~addr:((vpn + 1) * 4096) ~len:7));
  Alcotest.(check int) "no disk I/O ever" ops0 (stats sys).Sim.Stats.disk_read_ops;
  (* The process maps the device's own frame — code straight from the
     ROM, no copies. *)
  let pte = Option.get (Pmap.lookup vm.S.pmap ~vpn) in
  Alcotest.(check int) "maps the rom frame itself"
    dev.Uvm.Device.frames.(0).Physmem.Page.id pte.Pmap.page.Physmem.Page.id

let test_rom_shared_between_processes () =
  let sys, vm1 = mk () in
  let vm2 = S.new_vmspace sys in
  let dev = Uvm.Device.create_rom sys.S.usys ~name:"rom1" ~contents:rom_bytes in
  let obj = Uvm.Device.attach sys.S.usys dev in
  obj.Uvm.Object.refs <- obj.Uvm.Object.refs + 1 (* second mapping's ref *);
  let a = Uvm.map_object sys vm1 ~obj ~npages:3 ~prot:Pmap.Prot.rx ~share:Vt.Shared in
  let b = Uvm.map_object sys vm2 ~obj ~npages:3 ~prot:Pmap.Prot.rx ~share:Vt.Shared in
  S.touch sys vm1 ~vpn:a Vt.Read;
  S.touch sys vm2 ~vpn:b Vt.Read;
  let f1 = (Option.get (Pmap.lookup vm1.S.pmap ~vpn:a)).Pmap.page in
  let f2 = (Option.get (Pmap.lookup vm2.S.pmap ~vpn:b)).Pmap.page in
  Alcotest.(check int) "same physical frame" f1.Physmem.Page.id f2.Physmem.Page.id;
  (* Unmapping everywhere leaves the device frames intact (wired, owned by
     the device, never freed to the page pool). *)
  S.destroy_vmspace sys vm1;
  S.destroy_vmspace sys vm2;
  Alcotest.(check string) "rom survives unmaps" "BOOTROM-V1"
    (Bytes.to_string (Bytes.sub dev.Uvm.Device.frames.(0).Physmem.Page.data 0 10))

let test_rom_private_cow () =
  (* A private mapping of the ROM: writes are promoted to anonymous memory;
     the ROM itself is never modified. *)
  let sys, vm = mk () in
  let dev = Uvm.Device.create_rom sys.S.usys ~name:"rom2" ~contents:rom_bytes in
  let obj = Uvm.Device.attach sys.S.usys dev in
  let vpn = Uvm.map_object sys vm ~obj ~npages:3 ~prot:Pmap.Prot.rw ~share:Vt.Private in
  S.write_bytes sys vm ~addr:(vpn * 4096) (Bytes.of_string "PATCHED!");
  Alcotest.(check string) "patched view" "PATCHED!"
    (Bytes.to_string (S.read_bytes sys vm ~addr:(vpn * 4096) ~len:8));
  Alcotest.(check string) "rom pristine" "BOOTROM-V1"
    (Bytes.to_string (Bytes.sub dev.Uvm.Device.frames.(0).Physmem.Page.data 0 10))

module Swapping (V : Vmiface.Vm_sig.VM_SYS) = struct
  module P = Oslayer.Procsim.Make (V)

  let test () =
    let sys = V.boot () in
    P.boot_kernel sys;
    let proc = P.spawn sys Oslayer.Programs.cat in
    let kernel = V.kernel_vmspace sys in
    let wired_frames vm =
      (* Count wired translations in the kernel pmap range of this proc's
         ustruct by probing the pages. *)
      ignore vm;
      0
    in
    ignore wired_frames;
    (* Swap the process out: its user structure becomes pageable. *)
    P.swapout_proc sys proc;
    let entries_swapped = V.map_entry_count kernel in
    P.swapin_proc sys proc;
    let entries_back = V.map_entry_count kernel in
    Alcotest.(check int) "kernel map stable across swap cycle" entries_swapped
      entries_back;
    P.exit_proc sys proc
end

module SU = Swapping (Uvm.Sys)
module SB = Swapping (Bsdvm.Sys)

let test_swap_lock_traffic () =
  (* BSD's swapout/swapin goes through the kernel map (lock + lookup);
     UVM's does not touch it at all. *)
  let traffic (module V : Vmiface.Vm_sig.VM_SYS) =
    let module P = Oslayer.Procsim.Make (V) in
    let sys = V.boot () in
    P.boot_kernel sys;
    let proc = P.spawn sys Oslayer.Programs.cat in
    let st = (V.machine sys).Vmiface.Machine.stats in
    let locks0 = st.Sim.Stats.lock_acquisitions in
    for _ = 1 to 10 do
      P.swapout_proc sys proc;
      P.swapin_proc sys proc
    done;
    st.Sim.Stats.lock_acquisitions - locks0
  in
  let uvm = traffic (module Uvm.Sys) in
  let bsd = traffic (module Bsdvm.Sys) in
  (* Both re-wire through the fault path, but BSD additionally relocks the
     kernel map to record the wired attribute on every transition. *)
  Alcotest.(check bool) "bsd pays extra map locking" true (bsd >= uvm + 20)

let () =
  Alcotest.run "device"
    [
      ( "rom pager",
        [
          Alcotest.test_case "mapping" `Quick test_rom_mapping;
          Alcotest.test_case "shared frames" `Quick test_rom_shared_between_processes;
          Alcotest.test_case "private cow" `Quick test_rom_private_cow;
        ] );
      ( "process swapping",
        [
          Alcotest.test_case "uvm cycle" `Quick SU.test;
          Alcotest.test_case "bsd cycle" `Quick SB.test;
          Alcotest.test_case "lock traffic" `Quick test_swap_lock_traffic;
        ] );
    ]

(* Zero-copy data movement (paper §7): a producer process hands bulk data
   to the kernel (socket send via page loanout) and to a consumer process
   (page transfer), against the traditional copying path.

   Run with: dune exec examples/zero_copy.exe *)

open Vmiface.Vmtypes
module S = Uvm.Sys

let payload_pages = 64 (* a 256 KB message *)

let () =
  let sys = S.boot () in
  let mach = S.machine sys in
  let clock = mach.Vmiface.Machine.clock in
  let producer = S.new_vmspace sys in
  let consumer = S.new_vmspace sys in

  (* The producer builds a payload in anonymous memory. *)
  let src =
    S.mmap sys producer ~npages:payload_pages ~prot:Pmap.Prot.rw
      ~share:Private Zero
  in
  for i = 0 to payload_pages - 1 do
    S.write_bytes sys producer
      ~addr:((src + i) * 4096)
      (Bytes.of_string (Printf.sprintf "packet-%02d" i))
  done;

  (* Path 1: the traditional copy into kernel buffers. *)
  let t0 = Sim.Simclock.now clock in
  let kpages = Uvm.copy_to_kernel sys producer ~vpn:src ~npages:payload_pages in
  let copy_time = Sim.Simclock.now clock -. t0 in
  Uvm.copy_finish sys kpages;

  (* Path 2: loan the pages to the kernel — no copy, COW-protected. *)
  let t0 = Sim.Simclock.now clock in
  let loan = Uvm.loan_to_kernel producer ~vpn:src ~npages:payload_pages in
  let loan_time = Sim.Simclock.now clock -. t0 in
  let first = List.hd (Uvm.Loan.pages loan) in
  Printf.printf "kernel reads loaned frame: %S\n"
    (Bytes.to_string (Bytes.sub first.Physmem.Page.data 0 9));

  (* The producer can keep writing: COW snaps its view away from the
     loan. *)
  S.write_bytes sys producer ~addr:(src * 4096) (Bytes.of_string "rewritten");
  Printf.printf "after producer rewrite, kernel still sees: %S\n"
    (Bytes.to_string (Bytes.sub first.Physmem.Page.data 0 9));
  Uvm.loan_finish sys loan;

  (* Path 3: page transfer — the consumer receives the pages as its own
     anonymous memory, again without copying. *)
  let copies_before = mach.Vmiface.Machine.stats.Sim.Stats.pages_copied in
  let t0 = Sim.Simclock.now clock in
  let dst =
    Uvm.page_transfer producer ~vpn:src ~npages:payload_pages ~dst:consumer
      ~prot:Pmap.Prot.rw
  in
  let transfer_time = Sim.Simclock.now clock -. t0 in
  let got = S.read_bytes sys consumer ~addr:((dst + 1) * 4096) ~len:9 in
  Printf.printf "consumer reads transferred page: %S (pages copied: %d)\n"
    (Bytes.to_string got)
    (mach.Vmiface.Machine.stats.Sim.Stats.pages_copied - copies_before);

  (* Path 4: map-entry passing — move the whole range through the
     high-level map structures. *)
  let t0 = Sim.Simclock.now clock in
  let shared =
    Uvm.mexp_extract producer ~vpn:src ~npages:payload_pages ~dst:consumer
      Uvm.Mexp.Share
  in
  let mexp_time = Sim.Simclock.now clock -. t0 in
  S.write_bytes sys consumer ~addr:(shared * 4096) (Bytes.of_string "both see!");
  Printf.printf "map-entry passing: producer reads consumer's write: %S\n"
    (Bytes.to_string (S.read_bytes sys producer ~addr:(src * 4096) ~len:9));

  Printf.printf
    "\n%d-page send:\n  copy      %8.1f us\n  loanout   %8.1f us  (%.0f%% less)\n  transfer  %8.1f us\n  mexp      %8.1f us\n"
    payload_pages copy_time loan_time
    (100.0 *. (1.0 -. (loan_time /. copy_time)))
    transfer_time mexp_time

(* An Apache-like web server (the paper's §4 example): it serves files by
   memory-mapping them and "transmitting" the bytes.  Run the same server
   against UVM and BSD VM and watch what happens when the working set
   crosses one hundred files — the BSD VM object cache starts discarding
   file data that is still perfectly resident.

   Run with: dune exec examples/web_server.exe *)

open Vmiface.Vmtypes

let nfiles = 150
let file_pages = 16 (* 64 KB documents *)
let requests = 600

module Server (V : Vmiface.Vm_sig.VM_SYS) = struct
  let serve () =
    let config = Vmiface.Machine.config_mb ~ram_mb:64 () in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let vfs = mach.Vmiface.Machine.vfs in
    for i = 0 to nfiles - 1 do
      let vn =
        Vfs.create_file vfs
          ~name:(Printf.sprintf "/htdocs/page-%03d.html" i)
          ~size:(file_pages * 4096)
      in
      Vfs.vrele vfs vn
    done;
    let server = V.new_vmspace sys in
    let rng = Sim.Rng.create ~seed:42 in
    let checksum = ref 0 in
    let serve_one () =
      let doc = Sim.Rng.int rng nfiles in
      let vn = Vfs.lookup vfs ~name:(Printf.sprintf "/htdocs/page-%03d.html" doc) in
      (* mmap the document, "send" it, unmap. *)
      let vpn =
        V.mmap sys server ~npages:file_pages ~prot:Pmap.Prot.read
          ~share:Shared (File (vn, 0))
      in
      for p = 0 to file_pages - 1 do
        let b = V.read_bytes sys server ~addr:((vpn + p) * 4096) ~len:64 in
        checksum := !checksum + Char.code (Bytes.get b 0)
      done;
      V.munmap sys server ~vpn ~npages:file_pages;
      Vfs.vrele vfs vn
    in
    let clock = mach.Vmiface.Machine.clock in
    (* Warm up, then measure the steady state. *)
    for _ = 1 to requests / 3 do
      serve_one ()
    done;
    let t0 = Sim.Simclock.now clock in
    for _ = 1 to requests do
      serve_one ()
    done;
    let elapsed = Sim.Simclock.now clock -. t0 in
    let st = mach.Vmiface.Machine.stats in
    Printf.printf
      "%-8s %6d requests in %8.3f s  (%.2f ms/req, %d disk reads, %d cache evictions)\n"
      V.name requests (elapsed /. 1e6)
      (elapsed /. 1e3 /. float_of_int requests)
      st.Sim.Stats.disk_read_ops st.Sim.Stats.obj_cache_evictions;
    !checksum
end

module U = Server (Uvm.Sys)
module B = Server (Bsdvm.Sys)

let () =
  Printf.printf "web server: %d documents of %d KB, working set > 100 files\n\n"
    nfiles (file_pages * 4);
  let cu = U.serve () in
  let cb = B.serve () in
  (* Both servers must have served identical bytes. *)
  assert (cu = cb);
  Printf.printf
    "\nSame documents, same machine: BSD VM's hundred-object cache forces\n\
     disk reads for data that never left memory (paper Figure 2).\n"

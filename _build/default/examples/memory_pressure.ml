(* Memory pressure: "running a large compile job concurrently with an X
   server on a system with a small amount of physical memory" (paper §8).
   A big anonymous working set forces paging; the interactive process keeps
   touching its own few pages.  Compare how long the interactive work takes
   while each VM system is busy paging — UVM's clustered pageout keeps the
   system responsive.

   Run with: dune exec examples/memory_pressure.exe *)

open Vmiface.Vmtypes

module Run (V : Vmiface.Vm_sig.VM_SYS) = struct
  let go () =
    let config = Vmiface.Machine.config_mb ~ram_mb:16 ~swap_mb:128 () in
    let sys = V.boot ~config () in
    let mach = V.machine sys in
    let clock = mach.Vmiface.Machine.clock in

    (* The interactive process: an "editor" with a small working set. *)
    let editor = V.new_vmspace sys in
    let ed = V.mmap sys editor ~npages:16 ~prot:Pmap.Prot.rw ~share:Private Zero in
    V.access_range sys editor ~vpn:ed ~npages:16 Write;

    (* The compile job: allocates far more than RAM. *)
    let compiler = V.new_vmspace sys in
    let npages = 8192 (* 32 MB on a 16 MB machine *) in
    let work = V.mmap sys compiler ~npages ~prot:Pmap.Prot.rw ~share:Private Zero in

    let editor_time = ref 0.0 in
    let editor_ticks = ref 0 in
    let t_start = Sim.Simclock.now clock in
    for i = 0 to npages - 1 do
      V.write_bytes sys compiler ~addr:((work + i) * 4096)
        (Bytes.of_string (Printf.sprintf "obj%05d" i));
      (* Every 64 compiler pages, the user types a character. *)
      if i mod 64 = 0 then begin
        let t0 = Sim.Simclock.now clock in
        V.touch sys editor ~vpn:(ed + (i / 64 mod 16)) Write;
        editor_time := !editor_time +. (Sim.Simclock.now clock -. t0);
        incr editor_ticks
      end
    done;
    let total = Sim.Simclock.now clock -. t_start in
    let st = mach.Vmiface.Machine.stats in
    Printf.printf
      "%-8s compile: %7.2f s | editor keystroke avg: %8.1f us | pageouts=%d in %d I/Os\n"
      V.name (total /. 1e6)
      (!editor_time /. float_of_int !editor_ticks)
      st.Sim.Stats.pageouts st.Sim.Stats.disk_write_ops
end

module U = Run (Uvm.Sys)
module B = Run (Bsdvm.Sys)

let () =
  Printf.printf "32 MB compile job on a 16 MB machine, with an editor in use:\n\n";
  U.go ();
  B.go ();
  Printf.printf
    "\nUVM reassigns swap locations and pages out in clusters; BSD VM issues\n\
     one I/O per page, so the same job takes several times longer (paper\n\
     Figure 5 / section 8).\n"

examples/web_server.mli:

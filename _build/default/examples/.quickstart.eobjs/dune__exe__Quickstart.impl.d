examples/quickstart.ml: Bytes Physmem Pmap Printf Sim Swap Uvm Vfs Vmiface

examples/quickstart.mli:

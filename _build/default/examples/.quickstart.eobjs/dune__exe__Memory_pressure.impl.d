examples/memory_pressure.ml: Bsdvm Bytes Pmap Printf Sim Uvm Vmiface

examples/zero_copy.ml: Bytes List Physmem Pmap Printf Sim Uvm Vmiface

examples/zero_copy.mli:

examples/web_server.ml: Bsdvm Bytes Char Pmap Printf Sim Uvm Vfs Vmiface

examples/memory_pressure.mli:

(** The UVM pagedaemon (paper §6).

    Runs when physical memory is scarce.  Scans the inactive queue with a
    second-chance policy; clean pages with a valid backing copy are
    reclaimed immediately; dirty {e anonymous} pages are collected into a
    batch whose swap locations are {b reassigned} to a freshly-allocated
    contiguous range so the whole batch leaves in one clustered I/O — the
    paper's example: dirty anonymous pages at offsets three, five and
    seven still form a single cluster.  Dirty object pages are pushed
    through their pager's [pgo_put], which clusters by contiguity.

    Because the amap/anon layer needs no maps to find page owners, the
    daemon never takes a map lock.

    With [aggressive_clustering = false] (ablation) anonymous pageout
    degrades to BSD VM's one-I/O-per-page behaviour. *)

val run : Uvm_sys.t -> unit
(** One daemon pass: reclaim/clean until the free target is met or the
    inactive queue is exhausted, then refill the inactive queue from the
    active queue if still short. *)

val install : Uvm_sys.t -> unit
(** Register {!run} as the physmem pagedaemon callback (done at boot). *)

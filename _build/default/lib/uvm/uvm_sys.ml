(** Global UVM state: the machine plus UVM's tunables.

    The tunables expose the paper's design knobs so the ablation benchmarks
    can turn individual UVM improvements off:
    - [fault_ahead]/[fault_behind]: the fault routine's window for mapping
      resident neighbour pages (paper default: 4 ahead, 3 behind);
    - [pageout_cluster]: how many dirty anonymous pages the pagedaemon
      groups into one reassigned-swap I/O (§6);
    - [io_cluster]: pager read clustering;
    - [aggressive_clustering]: disable to fall back to BSD-style one-page
      pageout while keeping the rest of UVM. *)

module Machine = Vmiface.Machine

type t = {
  mach : Machine.t;
  fault_ahead : int;
  fault_behind : int;
  pageout_cluster : int;
  io_cluster : int;
  aggressive_clustering : bool;
  mutable next_id : int;
}

let create ?(fault_ahead = 4) ?(fault_behind = 3) ?(pageout_cluster = 4)
    ?(io_cluster = 4) ?(aggressive_clustering = true) mach =
  {
    mach;
    fault_ahead;
    fault_behind;
    pageout_cluster;
    io_cluster;
    aggressive_clustering;
    next_id = 0;
  }

(* Ids are unique process-wide (not just per system) so they can key
   registries shared by several booted systems (e.g. in tests that compare
   two kernels side by side). *)
let id_counter = ref 0

let fresh_id t =
  incr id_counter;
  t.next_id <- t.next_id + 1;
  !id_counter

let clock t = t.mach.Machine.clock
let costs t = t.mach.Machine.costs
let stats t = t.mach.Machine.stats
let physmem t = t.mach.Machine.physmem
let swapdev t = t.mach.Machine.swap
let vfs t = t.mach.Machine.vfs
let pmap_ctx t = t.mach.Machine.pmap_ctx
let charge t us = Sim.Simclock.advance (clock t) us
let charge_struct_alloc t = charge t (costs t).Sim.Cost_model.struct_alloc

(** Address-space duplication at fork (paper §5.2, Figure 3 lower row).

    Each parent entry is handled according to its inheritance attribute:
    - [Inh_none]: the child gets nothing;
    - [Inh_shared]: the child references the same amap and object — writes
      are mutually visible;
    - [Inh_copy]: copy-on-write — the child shares the parent's amap with
      the needs-copy flag set in both processes, and the parent's resident
      pages are write-protected so the first write on either side faults
      and resolves at anon granularity.  A shared amap cannot be deferred
      with needs-copy (the sharers' in-place writes would leak through),
      so it is copied immediately — the minherit corner case of §5.4. *)

val fork_map : Uvm_map.t -> child_pmap:Pmap.t -> Uvm_map.t
(** Build the child's map from the parent's.  No page data is copied. *)

lib/uvm/uvm_anon.ml: Format Physmem Pmap Sim Swap Uvm_sys

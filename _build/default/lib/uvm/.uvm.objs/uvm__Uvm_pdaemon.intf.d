lib/uvm/uvm_pdaemon.mli: Uvm_sys

lib/uvm/uvm_aobj.ml: Hashtbl List Physmem Sim Swap Uvm_object Uvm_sys

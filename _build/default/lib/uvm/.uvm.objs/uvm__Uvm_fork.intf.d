lib/uvm/uvm_fork.mli: Pmap Uvm_map

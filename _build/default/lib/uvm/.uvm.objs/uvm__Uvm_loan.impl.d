lib/uvm/uvm_loan.ml: List Physmem Pmap Sim Uvm_anon Uvm_fault Uvm_map Uvm_sys Vmiface

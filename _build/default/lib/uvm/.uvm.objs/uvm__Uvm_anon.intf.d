lib/uvm/uvm_anon.mli: Format Physmem Uvm_sys

lib/uvm/uvm_loan.mli: Physmem Uvm_anon Uvm_map Uvm_sys

lib/uvm/uvm_amap.ml: Array Format Option Printf Result Sim Uvm_anon Uvm_sys

lib/uvm/uvm_pdaemon.ml: Hashtbl List Physmem Pmap Swap Uvm_anon Uvm_object Uvm_sys

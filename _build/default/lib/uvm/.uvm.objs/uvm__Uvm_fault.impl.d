lib/uvm/uvm_fault.ml: List Option Physmem Pmap Sim Uvm_amap Uvm_anon Uvm_map Uvm_object Uvm_sys Vmiface

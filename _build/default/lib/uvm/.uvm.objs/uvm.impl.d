lib/uvm/uvm.ml: Bytes Hashtbl List Physmem Pmap Sim Swap Uvm_amap Uvm_anon Uvm_aobj Uvm_device Uvm_fault Uvm_fork Uvm_loan Uvm_map Uvm_mexp Uvm_object Uvm_pdaemon Uvm_sys Uvm_vnode Vmiface

lib/uvm/uvm_mexp.ml: List Pmap Sim Uvm_amap Uvm_map Uvm_object Uvm_sys Vmiface

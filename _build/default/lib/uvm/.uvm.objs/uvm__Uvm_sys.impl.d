lib/uvm/uvm_sys.ml: Sim Vmiface

lib/uvm/uvm_map.ml: Format List Pmap Printf Sim Uvm_amap Uvm_object Uvm_sys Vmiface

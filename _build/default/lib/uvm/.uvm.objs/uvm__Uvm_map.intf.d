lib/uvm/uvm_map.mli: Format Pmap Uvm_amap Uvm_object Uvm_sys Vmiface

lib/uvm/uvm_fork.ml: Pmap Sim Uvm_amap Uvm_map Uvm_object Uvm_sys Vmiface

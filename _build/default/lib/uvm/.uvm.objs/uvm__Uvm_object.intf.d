lib/uvm/uvm_object.mli: Hashtbl Physmem Uvm_sys

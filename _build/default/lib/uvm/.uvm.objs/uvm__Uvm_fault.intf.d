lib/uvm/uvm_fault.mli: Uvm_map Uvm_sys Vmiface

lib/uvm/uvm_aobj.mli: Uvm_object Uvm_sys

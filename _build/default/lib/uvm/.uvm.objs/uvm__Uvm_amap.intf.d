lib/uvm/uvm_amap.mli: Format Uvm_anon Uvm_sys

lib/uvm/uvm_vnode.mli: Uvm_object Uvm_sys Vfs

lib/uvm/uvm_vnode.ml: List Physmem Sim Uvm_object Uvm_sys Vfs

lib/uvm/uvm_device.ml: Array Bytes Hashtbl List Physmem Uvm_object Uvm_sys

lib/uvm/uvm_mexp.mli: Pmap Uvm_anon Uvm_map

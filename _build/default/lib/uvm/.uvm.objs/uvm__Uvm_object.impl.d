lib/uvm/uvm_object.ml: Hashtbl Physmem Pmap Uvm_sys

(** Page loanout (paper §7).

    Lets pages from a process' address space be used by the kernel (I/O,
    IPC) or handed to other processes without copying, while preserving
    copy-on-write: a loaned page is write-protected everywhere, so a write
    by the owner faults and resolves into a fresh page, leaving the
    borrower's view intact.  A loaned page whose owner drops it survives
    until the last loan ends.  Loanout never touches map entries, so it
    causes no map fragmentation. *)

type t
(** An outstanding kernel loan (e.g. pages lent to the socket layer). *)

val to_kernel : Uvm_map.t -> vpn:int -> npages:int -> t
(** Loan the pages backing [vpn, vpn+npages) to the kernel: faults them in
    as needed, wires them and write-protects the owner's view.
    @raise Vmiface.Vmtypes.Segv if the range is not readable. *)

val pages : t -> Physmem.Page.t list
(** The loaned frames, for the borrowing subsystem to use. *)

val finish : Uvm_sys.t -> t -> unit
(** Return the loan (the kernel is done with the pages). *)

val to_anons : Uvm_map.t -> vpn:int -> npages:int -> Uvm_anon.t list
(** Loan pages out as anonymous memory: each page is wrapped in a fresh
    anon (for anon-owned pages the anon itself is shared instead — no loan
    needed).  The result can be installed in another address space with
    {!Uvm_mexp.import_anons} (page transfer).  The caller owns one
    reference on each returned anon. *)

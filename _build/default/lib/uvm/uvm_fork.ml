module Vmtypes = Vmiface.Vmtypes
open Uvm_map

let clone_entry t (e : entry) =
  (Uvm_sys.stats t.sys).Sim.Stats.map_entries_allocated <-
    (Uvm_sys.stats t.sys).Sim.Stats.map_entries_allocated + 1;
  Uvm_sys.charge_struct_alloc t.sys;
  {
    spage = e.spage;
    epage = e.epage;
    obj = e.obj;
    objoff = e.objoff;
    amap = e.amap;
    amapoff = e.amapoff;
    prot = e.prot;
    maxprot = e.maxprot;
    inh = e.inh;
    advice = e.advice;
    wired = 0;
    cow = e.cow;
    needs_copy = e.needs_copy;
    prev = None;
    next = None;
  }

let fork_shared sys child (e : entry) =
  ignore sys;
  (match e.amap with
  | Some am ->
      Uvm_amap.ref_range am ~slotoff:e.amapoff ~len:(entry_npages e);
      am.Uvm_amap.shared <- true
  | None -> ());
  (match e.obj with
  | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_reference ()
  | None -> ());
  Uvm_map.insert_entry_raw child (clone_entry child e)

let fork_copy sys parent child (e : entry) =
  let fresh = clone_entry child e in
  fresh.cow <- true;
  (match e.obj with
  | Some o -> o.Uvm_object.pgops.Uvm_object.pgo_reference ()
  | None -> ());
  (match e.amap with
  | None ->
      (* Nothing anonymous yet: pure needs-copy deferral. *)
      fresh.needs_copy <- true
  | Some am when am.Uvm_amap.shared ->
      (* amap_cow_now: a shared amap's in-place writes would leak into a
         deferred copy, so snapshot it at fork time. *)
      fresh.amap <-
        Some (Uvm_amap.copy sys am ~slotoff:e.amapoff ~len:(entry_npages e));
      fresh.amapoff <- 0;
      fresh.needs_copy <- false;
      Pmap.restrict_range parent.pmap ~lo:e.spage ~hi:e.epage
        ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx)
  | Some am ->
      (* Figure 3: share the amap, set needs-copy on both sides, and
         write-protect the parent's view so either side's first write
         faults. *)
      Uvm_amap.ref_range am ~slotoff:e.amapoff ~len:(entry_npages e);
      fresh.needs_copy <- true;
      e.needs_copy <- true;
      Pmap.restrict_range parent.pmap ~lo:e.spage ~hi:e.epage
        ~prot:(Pmap.Prot.remove_write Pmap.Prot.rwx));
  Uvm_map.insert_entry_raw child fresh

let fork_map parent ~child_pmap =
  let sys = parent.sys in
  let child =
    Uvm_map.create sys ~pmap:child_pmap ~lo:parent.lo ~hi:parent.hi
      ~kernel:false
  in
  Uvm_map.lock parent;
  Uvm_map.iter_entries
    (fun e ->
      match e.inh with
      | Vmtypes.Inh_none -> ()
      | Vmtypes.Inh_shared -> fork_shared sys child e
      | Vmtypes.Inh_copy -> fork_copy sys parent child e)
    parent;
  Uvm_map.unlock parent;
  child

(** Map-entry passing and page transfer (paper §7).

    Map-entry passing moves, copies or shares whole ranges of a virtual
    address space between maps using the high-level mapping structures —
    cheaper per page than loanout/transfer, at the price of possible map
    fragmentation when used on small ranges.

    Page transfer ({!import_anons}) installs anonymous pages (typically
    produced by {!Uvm_loan.to_anons}) into a process' address space, where
    they become ordinary anonymous memory. *)

type mode =
  | Share  (** both maps see the same memory; writes are mutually visible *)
  | Copy  (** receiver gets a copy-on-write snapshot *)
  | Donate  (** entries move; the source loses the range *)

val extract :
  src:Uvm_map.t -> spage:int -> npages:int -> dst:Uvm_map.t -> mode -> int
(** Transfer the mappings covering [spage, spage+npages) from [src] into a
    freshly chosen range of [dst]; returns the destination start page.
    @raise Invalid_argument if the source range contains unmapped holes. *)

val import_anons :
  dst:Uvm_map.t -> anons:Uvm_anon.t list -> prot:Pmap.Prot.t -> int
(** Page transfer: build a private anonymous mapping in [dst] whose amap is
    pre-loaded with [anons] (the caller's references are consumed); returns
    the start page.  The inserted memory is indistinguishable from
    ordinary anonymous memory. *)

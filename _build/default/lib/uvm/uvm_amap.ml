type t = {
  id : int;
  mutable refs : int;
  mutable nslots : int;
  mutable anons : Uvm_anon.t option array;
  mutable ppref : int array option;
  mutable nused : int;
  mutable shared : bool;
}

let create sys ~nslots =
  if nslots < 1 then invalid_arg "Uvm_amap.create: nslots must be >= 1";
  let stats = Uvm_sys.stats sys in
  stats.Sim.Stats.amaps_allocated <- stats.Sim.Stats.amaps_allocated + 1;
  Uvm_sys.charge_struct_alloc sys;
  {
    id = Uvm_sys.fresh_id sys;
    refs = 1;
    nslots;
    anons = Array.make nslots None;
    ppref = None;
    nused = 0;
    shared = false;
  }

let check_slot t slot =
  if slot < 0 || slot >= t.nslots then
    invalid_arg (Printf.sprintf "Uvm_amap: slot %d out of [0,%d)" slot t.nslots)

let lookup t ~slot =
  check_slot t slot;
  t.anons.(slot)

let add sys t ~slot anon =
  check_slot t slot;
  ignore sys;
  (match t.anons.(slot) with
  | Some _ -> invalid_arg "Uvm_amap.add: slot occupied"
  | None -> ());
  t.anons.(slot) <- Some anon;
  t.nused <- t.nused + 1

let clear_slot sys t ~slot =
  check_slot t slot;
  match t.anons.(slot) with
  | None -> ()
  | Some anon ->
      Uvm_anon.unref sys anon;
      t.anons.(slot) <- None;
      t.nused <- t.nused - 1

let replace sys t ~slot anon =
  check_slot t slot;
  clear_slot sys t ~slot;
  add sys t ~slot anon

(* While [ppref = None] every reference covers every slot, so per-slot
   counts all equal [refs]. *)
let establish_ppref t =
  match t.ppref with
  | Some _ -> ()
  | None -> t.ppref <- Some (Array.make t.nslots t.refs)

let covers_whole t ~slotoff ~len = slotoff = 0 && len = t.nslots

let copy sys src ~slotoff ~len =
  if slotoff < 0 || len < 1 || slotoff + len > src.nslots then
    invalid_arg "Uvm_amap.copy: bad range";
  let dst = create sys ~nslots:len in
  for i = 0 to len - 1 do
    match src.anons.(slotoff + i) with
    | None -> ()
    | Some anon ->
        Uvm_anon.ref_ anon;
        dst.anons.(i) <- Some anon;
        dst.nused <- dst.nused + 1
  done;
  dst

let splitref t =
  establish_ppref t;
  t.refs <- t.refs + 1

let ref_range t ~slotoff ~len =
  if slotoff < 0 || len < 1 || slotoff + len > t.nslots then
    invalid_arg "Uvm_amap.ref_range: bad range";
  if covers_whole t ~slotoff ~len && t.ppref = None then t.refs <- t.refs + 1
  else begin
    establish_ppref t;
    t.refs <- t.refs + 1;
    let pp = Option.get t.ppref in
    for i = slotoff to slotoff + len - 1 do
      pp.(i) <- pp.(i) + 1
    done
  end

let release_all sys t =
  for slot = 0 to t.nslots - 1 do
    clear_slot sys t ~slot
  done;
  let stats = Uvm_sys.stats sys in
  stats.Sim.Stats.amaps_freed <- stats.Sim.Stats.amaps_freed + 1

let unref_range sys t ~slotoff ~len =
  if t.refs <= 0 then invalid_arg "Uvm_amap.unref_range: no references";
  if slotoff < 0 || len < 1 || slotoff + len > t.nslots then
    invalid_arg "Uvm_amap.unref_range: bad range";
  if covers_whole t ~slotoff ~len && t.ppref = None then begin
    t.refs <- t.refs - 1;
    if t.refs = 0 then release_all sys t
  end
  else begin
    establish_ppref t;
    t.refs <- t.refs - 1;
    if t.refs = 0 then release_all sys t
    else begin
      let pp = Option.get t.ppref in
      for i = slotoff to slotoff + len - 1 do
        if pp.(i) <= 0 then invalid_arg "Uvm_amap.unref_range: ppref underflow";
        pp.(i) <- pp.(i) - 1;
        if pp.(i) = 0 then clear_slot sys t ~slot:i
      done
    end
  end

let extend t ~by =
  if by < 1 then invalid_arg "Uvm_amap.extend: by must be >= 1";
  if t.refs <> 1 || t.shared || t.ppref <> None then
    invalid_arg "Uvm_amap.extend: amap is shared or partially referenced";
  let fresh = Array.make (t.nslots + by) None in
  Array.blit t.anons 0 fresh 0 t.nslots;
  t.anons <- fresh;
  t.nslots <- t.nslots + by

let slots_used t = t.nused

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (t.refs >= 0) "refs negative" in
  let used = Array.fold_left (fun n a -> if a = None then n else n + 1) 0 t.anons in
  let* () =
    check (used = t.nused)
      (Printf.sprintf "nused=%d but %d slots occupied" t.nused used)
  in
  let* () =
    check
      (Array.for_all
         (function Some a -> a.Uvm_anon.refs > 0 | None -> true)
         t.anons)
      "slot holds dead anon"
  in
  match t.ppref with
  | None -> Ok ()
  | Some pp ->
      let* () =
        check (Array.length pp = t.nslots) "ppref length mismatch"
      in
      check (Array.for_all (fun c -> c >= 0) pp) "negative ppref"

let pp ppf t =
  Format.fprintf ppf "amap#%d{refs=%d nslots=%d nused=%d ppref=%b}" t.id t.refs
    t.nslots t.nused (t.ppref <> None)

(** Amaps: anonymous memory maps (paper §5.2).

    An amap is an array of slots, each optionally holding a reference to an
    {!Uvm_anon.t}.  A map entry's anonymous layer is an [(amap, slot
    offset)] pair, so clipping an entry shares the amap at different
    offsets rather than copying it.

    Reference counting comes in two granularities, as in UVM proper:
    [refs] counts referencing map entries, and a lazily-established
    per-page reference array ([ppref]) tracks slot ranges once references
    stop covering the whole amap (entry clipping, partial unmaps).  The
    invariant: while [ppref] is unallocated, every reference covers every
    slot.

    This module is the amap {e implementation}; per the paper (§5.2,
    fourth difference from SunOS) the interface is kept separate from the
    array-based implementation so it could be swapped for a hybrid
    hash/array one. *)

type t = {
  id : int;
  mutable refs : int;  (** number of referencing map entries *)
  mutable nslots : int;
  mutable anons : Uvm_anon.t option array;
  mutable ppref : int array option;  (** per-slot reference counts *)
  mutable nused : int;  (** occupied slots *)
  mutable shared : bool;  (** referenced by a shared (non-COW) mapping *)
}

val create : Uvm_sys.t -> nslots:int -> t
(** A fresh amap with one reference and empty slots. *)

val lookup : t -> slot:int -> Uvm_anon.t option

val add : Uvm_sys.t -> t -> slot:int -> Uvm_anon.t -> unit
(** Install an anon in an empty slot (takes over the caller's reference).
    @raise Invalid_argument if the slot is occupied. *)

val replace : Uvm_sys.t -> t -> slot:int -> Uvm_anon.t -> unit
(** Swap in a new anon, dropping one reference on the displaced one
    (COW resolution). *)

val clear_slot : Uvm_sys.t -> t -> slot:int -> unit
(** Drop the slot's anon reference and empty the slot. *)

val copy : Uvm_sys.t -> t -> slotoff:int -> len:int -> t
(** The needs-copy-clearing copy: a new single-reference amap whose slots
    alias the source's anons (each anon gains a reference).  Future writes
    resolve at anon granularity. *)

val splitref : t -> unit
(** Called when a map entry referencing this amap is clipped in two: the
    single reference becomes two covering disjoint subranges, so [ppref]
    is established and [refs] incremented without per-slot changes. *)

val ref_range : t -> slotoff:int -> len:int -> unit
(** A new map entry takes a reference covering [slotoff, slotoff+len)
    (fork-share, fork-copy, map-entry passing). *)

val unref_range : Uvm_sys.t -> t -> slotoff:int -> len:int -> unit
(** A map entry drops its reference over the range.  Slots whose per-page
    count reaches zero release their anons immediately; when the last
    reference goes, everything is released.  There is no collapse
    operation and nothing can leak. *)

val extend : t -> by:int -> unit
(** Grow the amap by [by] empty slots at the end — used when an adjacent
    kernel-map entry is merged into this one ([amap_extend] in UVM).
    Only legal on unshared, single-reference amaps.
    @raise Invalid_argument otherwise. *)

val slots_used : t -> int

val check_invariants : t -> (unit, string) result
(** Structural invariants, used by the property tests. *)

val pp : Format.formatter -> t -> unit

(* Reclaim a page whose data is safe elsewhere (or nowhere needed). *)
let reclaim sys (page : Physmem.Page.t) =
  Pmap.page_remove_all (Uvm_sys.pmap_ctx sys) page;
  (match page.owner with
  | Uvm_anon.Anon_page anon -> anon.Uvm_anon.page <- None
  | Uvm_object.Uobj_page obj -> Uvm_object.remove_page obj ~pgno:page.owner_offset
  | _ -> ());
  Physmem.free_page (Uvm_sys.physmem sys) page

(* Push a batch of dirty anonymous pages to swap.  UVM mode: reassign all
   their swap locations to one contiguous run and write a single cluster. *)
let flush_anon_batch sys batch =
  match batch with
  | [] -> ()
  | _ ->
      let swapdev = Uvm_sys.swapdev sys in
      let n = List.length batch in
      let clustered =
        if sys.Uvm_sys.aggressive_clustering then Swap.Swapdev.alloc_slots swapdev ~n
        else None
      in
      (match clustered with
      | Some base ->
          List.iteri
            (fun i (anon, _page) ->
              (* Dynamic swap-location reassignment at page granularity. *)
              Uvm_anon.set_swslot sys anon (base + i))
            batch;
          Swap.Swapdev.write_cluster swapdev ~slot:base
            ~pages:(List.map snd batch)
      | None ->
          (* BSD-style (or swap-fragmented) path: one I/O per page. *)
          List.iter
            (fun (anon, page) ->
              let slot =
                if anon.Uvm_anon.swslot <> 0 then Some anon.Uvm_anon.swslot
                else Swap.Swapdev.alloc_slots swapdev ~n:1
              in
              match slot with
              | Some slot ->
                  if anon.Uvm_anon.swslot = 0 then
                    anon.Uvm_anon.swslot <- slot;
                  Swap.Swapdev.write_cluster swapdev ~slot ~pages:[ page ]
              | None -> (* swap full; cannot clean this page *) ())
            batch);
      (* Pages that now have a swap copy are clean and reclaimable. *)
      List.iter
        (fun ((anon : Uvm_anon.t), (page : Physmem.Page.t)) ->
          if (not page.dirty) && anon.swslot <> 0 then reclaim sys page)
        batch

let flush_object_batches sys batches =
  Hashtbl.iter
    (fun _ (obj, pages) ->
      obj.Uvm_object.pgops.Uvm_object.pgo_put pages;
      List.iter
        (fun (page : Physmem.Page.t) ->
          if not page.dirty then reclaim sys page)
        pages)
    batches

let run sys =
  let physmem = Uvm_sys.physmem sys in
  let target = Physmem.freetarg physmem in
  let anon_batch = ref [] in
  let obj_batches : (int, Uvm_object.t * Physmem.Page.t list) Hashtbl.t =
    Hashtbl.create 8
  in
  let batched = ref 0 in
  let scan (page : Physmem.Page.t) =
    if Physmem.free_count physmem + !batched < target then
      if page.busy || page.wire_count > 0 || page.loan_count > 0 then ()
      else if page.referenced then
        (* Second chance: recently used, give it another lap. *)
        Physmem.activate physmem page
      else
        match page.owner with
        | Uvm_anon.Anon_page anon ->
            if page.dirty || anon.Uvm_anon.swslot = 0 then begin
              anon_batch := (anon, page) :: !anon_batch;
              incr batched;
              page.dirty <- true;
              if List.length !anon_batch >= sys.Uvm_sys.pageout_cluster then begin
                flush_anon_batch sys (List.rev !anon_batch);
                anon_batch := []
              end
            end
            else reclaim sys page
        | Uvm_object.Uobj_page obj ->
            if page.dirty then begin
              let prev =
                match Hashtbl.find_opt obj_batches obj.Uvm_object.id with
                | Some (_, pages) -> pages
                | None -> []
              in
              Hashtbl.replace obj_batches obj.Uvm_object.id (obj, page :: prev);
              incr batched
            end
            else reclaim sys page
        | _ ->
            (* Unowned pages on the inactive queue should not happen. *)
            assert false
  in
  List.iter scan (Physmem.inactive_pages physmem);
  flush_anon_batch sys (List.rev !anon_batch);
  flush_object_batches sys obj_batches;
  (* Still short: migrate cold active pages to the inactive queue so the
     next pass can reclaim them.  Their translations are removed so reuse
     refaults and reactivates. *)
  if Physmem.free_count physmem < target then begin
    let need =
      2 * (target - Physmem.free_count physmem)
      - Physmem.inactive_count physmem
    in
    let moved = ref 0 in
    List.iter
      (fun (page : Physmem.Page.t) ->
        if
          !moved < need && (not page.busy) && page.wire_count = 0
          && page.loan_count = 0
        then begin
          if page.referenced then page.referenced <- false
          else begin
            Pmap.page_remove_all (Uvm_sys.pmap_ctx sys) page;
            Physmem.deactivate physmem page;
            incr moved
          end
        end)
      (Physmem.active_pages physmem)
  end

let install sys = Physmem.set_pagedaemon (Uvm_sys.physmem sys) (fun () -> run sys)

lib/vfs/vfs.ml: Bytes Char Hashtbl List Physmem Printf Sim Vnode

lib/vfs/vnode.ml: Format Sim

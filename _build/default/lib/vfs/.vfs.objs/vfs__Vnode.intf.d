lib/vfs/vnode.mli: Format Sim

lib/vfs/vfs.mli: Physmem Sim Vnode

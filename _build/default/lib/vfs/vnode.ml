type vm_private = ..
type vm_private += No_vm

type t = {
  vid : int;
  name : string;
  mutable size : int;
  mutable usecount : int;
  mutable data : bytes;
  mutable vm_private : vm_private;
  mutable incore : bool;
  mutable lru_node : t Sim.Dlist.node option;
  mutable last_read_end : int;
}

let pp ppf t =
  Format.fprintf ppf "vnode#%d(%s use=%d size=%d incore=%b)" t.vid t.name
    t.usecount t.size t.incore

(** Vnodes: the I/O system's handle on a file.

    The paper's central object-management point (§4) is that UVM embeds its
    memory object *inside* the vnode instead of allocating separate
    VM structures.  We model the embedding with the extensible field
    {!vm_private}: the [uvm] library stores its [uvm_vnode] object there,
    while the [bsdvm] library keeps its own separately-allocated object and
    pager structures plus a hash table, exactly as 4.4BSD did. *)

type vm_private = ..
(** Slot for the VM system's per-vnode state. *)

type vm_private += No_vm

type t = {
  vid : int;
  name : string;
  mutable size : int;  (** file length in bytes *)
  mutable usecount : int;  (** active references *)
  mutable data : bytes;  (** canonical "on-disk" contents *)
  mutable vm_private : vm_private;
  mutable incore : bool;  (** has in-core (cached) state *)
  mutable lru_node : t Sim.Dlist.node option;  (** free-LRU linkage *)
  mutable last_read_end : int;  (** read-ahead detector: end of last read *)
}

val pp : Format.formatter -> t -> unit

type t = { r : bool; w : bool; x : bool }

let none = { r = false; w = false; x = false }
let read = { r = true; w = false; x = false }
let rw = { r = true; w = true; x = false }
let rx = { r = true; w = false; x = true }
let rwx = { r = true; w = true; x = true }
let all = rwx

let subsumes granted wanted =
  (granted.r || not wanted.r)
  && (granted.w || not wanted.w)
  && (granted.x || not wanted.x)

let intersect a b = { r = a.r && b.r; w = a.w && b.w; x = a.x && b.x }
let remove_write t = { t with w = false }
let equal a b = a = b

let to_string t =
  Printf.sprintf "%c%c%c"
    (if t.r then 'r' else '-')
    (if t.w then 'w' else '-')
    (if t.x then 'x' else '-')

let pp ppf t = Format.pp_print_string ppf (to_string t)

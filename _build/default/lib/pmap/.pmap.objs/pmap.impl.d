lib/pmap/pmap.ml: Hashtbl List Physmem Prot Sim

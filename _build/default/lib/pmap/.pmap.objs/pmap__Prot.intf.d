lib/pmap/prot.mli: Format

lib/pmap/prot.ml: Format Printf

lib/pmap/pmap.mli: Physmem Prot Sim

(** Page protections (read / write / execute). *)

type t = { r : bool; w : bool; x : bool }

val none : t
val read : t  (** r-- *)

val rw : t  (** rw- *)

val rx : t  (** r-x *)

val rwx : t
val all : t  (** alias for {!rwx} *)

val subsumes : t -> t -> bool
(** [subsumes granted wanted] is true when every access right in [wanted] is
    present in [granted]. *)

val intersect : t -> t -> t
val remove_write : t -> t
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

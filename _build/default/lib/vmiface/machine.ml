type config = {
  ram_pages : int;
  swap_pages : int;
  page_size : int;
  max_vnodes : int;
  costs : Sim.Cost_model.t;
  seed : int;
}

let default_config =
  {
    ram_pages = 8192 (* 32 MB of 4 KB pages *);
    swap_pages = 32768 (* 128 MB *);
    page_size = 4096;
    max_vnodes = 2048;
    costs = Sim.Cost_model.default;
    seed = 0xB5D;
  }

let config_mb ?(ram_mb = 32) ?(swap_mb = 128) () =
  {
    default_config with
    ram_pages = ram_mb * 1024 * 1024 / default_config.page_size;
    swap_pages = swap_mb * 1024 * 1024 / default_config.page_size;
  }

type t = {
  config : config;
  clock : Sim.Simclock.t;
  costs : Sim.Cost_model.t;
  stats : Sim.Stats.t;
  rng : Sim.Rng.t;
  physmem : Physmem.t;
  pmap_ctx : Pmap.ctx;
  swap : Swap.Swapdev.t;
  vfs : Vfs.t;
}

let boot ?(config = default_config) () =
  let clock = Sim.Simclock.create () in
  let costs = config.costs in
  let stats = Sim.Stats.create () in
  {
    config;
    clock;
    costs;
    stats;
    rng = Sim.Rng.create ~seed:config.seed;
    physmem =
      Physmem.create ~page_size:config.page_size ~npages:config.ram_pages
        ~clock ~costs ~stats ();
    pmap_ctx = Pmap.create_ctx ~clock ~costs ~stats;
    swap =
      Swap.Swapdev.create ~nslots:config.swap_pages
        ~page_size:config.page_size ~clock ~costs ~stats;
    vfs =
      Vfs.create ~max_vnodes:config.max_vnodes ~page_size:config.page_size
        ~clock ~costs ~stats ();
  }

let page_size t = t.config.page_size
let now t = Sim.Simclock.now t.clock
let charge t us = Sim.Simclock.advance t.clock us

lib/vmiface/vm_sig.ml: Machine Pmap Vmtypes

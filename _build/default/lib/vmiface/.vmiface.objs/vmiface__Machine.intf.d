lib/vmiface/machine.mli: Physmem Pmap Sim Swap Vfs

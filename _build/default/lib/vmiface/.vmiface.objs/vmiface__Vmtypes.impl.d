lib/vmiface/vmtypes.ml: Printexc Printf Vfs

lib/vmiface/machine.ml: Physmem Pmap Sim Swap Vfs

lib/bsdvm/vm_fault.ml: Bsd_sys Physmem Pmap Sim Vm_map Vm_object Vmiface

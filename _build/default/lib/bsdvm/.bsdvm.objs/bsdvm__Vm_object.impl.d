lib/bsdvm/vm_object.ml: Bsd_sys Hashtbl List Physmem Pmap Sim Swap Vfs

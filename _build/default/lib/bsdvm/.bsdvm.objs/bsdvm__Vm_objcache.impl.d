lib/bsdvm/vm_objcache.ml: Bsd_sys Hashtbl List Physmem Sim Vfs Vm_object

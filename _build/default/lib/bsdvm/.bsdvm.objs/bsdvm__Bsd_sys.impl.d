lib/bsdvm/bsd_sys.ml: Sim Vmiface

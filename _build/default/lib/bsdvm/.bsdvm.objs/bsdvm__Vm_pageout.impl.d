lib/bsdvm/vm_pageout.ml: Bsd_sys Hashtbl List Physmem Pmap Swap Vfs Vm_object

lib/bsdvm/vm_map.ml: Bsd_sys List Pmap Sim Vm_objcache Vm_object Vmiface

lib/bsdvm/bsdvm.ml: Bsd_sys Bytes Hashtbl List Physmem Pmap Sim Swap Vfs Vm_fault Vm_map Vm_objcache Vm_object Vm_pageout Vmiface

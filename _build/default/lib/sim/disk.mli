(** Rotating-disk cost model.

    An I/O operation costs a fixed latency (seek + rotational delay) plus a
    per-page transfer time.  This captures the property the paper's Figure 5
    depends on: writing n scattered pages as n single-page operations costs
    [n * (latency + transfer)], while one clustered operation costs
    [latency + n * transfer]. *)

type t

val create : clock:Simclock.t -> costs:Cost_model.t -> stats:Stats.t -> t

val read : ?sequential:bool -> t -> npages:int -> unit
(** One read operation transferring [npages] contiguous pages; advances the
    simulated clock and counts the op.  With [sequential:true] the fixed
    per-operation latency is waived — the filesystem's read-ahead already
    has the head positioned (UFS-style streaming).  [npages] must be
    >= 1. *)

val write : t -> npages:int -> unit
(** One write operation transferring [npages] contiguous pages. *)

val read_ops : t -> int
val write_ops : t -> int
val pages_read : t -> int
val pages_written : t -> int

(** Deterministic pseudo-random numbers (splitmix64).

    Workload generators (access traces, boot scripts) must be reproducible
    across runs and independent of the OCaml stdlib [Random] global state, so
    they carry their own generator. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

type t = {
  clock : Simclock.t;
  costs : Cost_model.t;
  stats : Stats.t;
  mutable read_ops : int;
  mutable write_ops : int;
  mutable pages_read : int;
  mutable pages_written : int;
}

let create ~clock ~costs ~stats =
  { clock; costs; stats; read_ops = 0; write_ops = 0; pages_read = 0; pages_written = 0 }

let transfer_cost ?(sequential = false) t npages =
  (if sequential then 0.0 else t.costs.Cost_model.disk_op_latency)
  +. (float_of_int npages *. t.costs.Cost_model.disk_page_transfer)

let read ?sequential t ~npages =
  if npages < 1 then invalid_arg "Disk.read: npages must be >= 1";
  Simclock.advance t.clock (transfer_cost ?sequential t npages);
  t.read_ops <- t.read_ops + 1;
  t.pages_read <- t.pages_read + npages;
  t.stats.Stats.disk_read_ops <- t.stats.Stats.disk_read_ops + 1;
  t.stats.Stats.disk_pages_read <- t.stats.Stats.disk_pages_read + npages

let write t ~npages =
  if npages < 1 then invalid_arg "Disk.write: npages must be >= 1";
  Simclock.advance t.clock (transfer_cost t npages);
  t.write_ops <- t.write_ops + 1;
  t.pages_written <- t.pages_written + npages;
  t.stats.Stats.disk_write_ops <- t.stats.Stats.disk_write_ops + 1;
  t.stats.Stats.disk_pages_written <- t.stats.Stats.disk_pages_written + npages

let read_ops t = t.read_ops
let write_ops t = t.write_ops
let pages_read t = t.pages_read
let pages_written t = t.pages_written

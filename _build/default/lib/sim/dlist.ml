type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : 'a t option;
}

and 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable len : int;
}

let create () = { head = None; tail = None; len = 0 }
let length t = t.len
let is_empty t = t.len = 0
let value n = n.v
let on_list n t = match n.owner with Some o -> o == t | None -> false

let push_head t v =
  let n = { v; prev = None; next = t.head; owner = Some t } in
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n;
  t.len <- t.len + 1;
  n

let push_tail t v =
  let n = { v; prev = t.tail; next = None; owner = Some t } in
  (match t.tail with Some l -> l.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n;
  t.len <- t.len + 1;
  n

let remove t n =
  if not (on_list n t) then invalid_arg "Dlist.remove: node not on this list";
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- None;
  t.len <- t.len - 1

let pop_head t =
  match t.head with
  | None -> None
  | Some n ->
      remove t n;
      Some n.v

let pop_tail t =
  match t.tail with
  | None -> None
  | Some n ->
      remove t n;
      Some n.v

let peek_head t = Option.map value t.head
let peek_tail t = Option.map value t.tail
let head_node t = t.head
let next_node n = n.next

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        (* capture next before [f] possibly unlinks [n] *)
        let nxt = n.next in
        f n.v;
        go nxt
  in
  go t.head

let fold f acc t =
  let rec go acc = function
    | None -> acc
    | Some n ->
        let nxt = n.next in
        go (f acc n.v) nxt
  in
  go acc t.head

let exists p t = fold (fun acc v -> acc || p v) false t
let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

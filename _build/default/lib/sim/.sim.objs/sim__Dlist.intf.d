lib/sim/dlist.mli:

lib/sim/rng.mli:

lib/sim/dlist.ml: List Option

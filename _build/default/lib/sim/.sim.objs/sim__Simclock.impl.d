lib/sim/simclock.ml: Float Format

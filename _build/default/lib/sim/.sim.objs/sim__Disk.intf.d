lib/sim/disk.mli: Cost_model Simclock Stats

lib/sim/disk.ml: Cost_model Simclock Stats

(** Doubly-linked lists with O(1) removal given a node.

    Used for physical-page queues (free/active/inactive) and other
    kernel-style intrusive lists where an element must be unlinked without
    scanning.  A node knows which list it is on, so removing a node from a
    list it does not belong to is detected as a programming error. *)

type 'a t
(** A mutable doubly-linked list. *)

type 'a node
(** A node of a list, carrying a value of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty list. *)

val length : 'a t -> int
(** [length t] is the number of nodes currently on [t].  O(1). *)

val is_empty : 'a t -> bool

val value : 'a node -> 'a
(** [value n] is the payload stored in [n]. *)

val on_list : 'a node -> 'a t -> bool
(** [on_list n t] is [true] iff [n] is currently linked on [t]. *)

val push_head : 'a t -> 'a -> 'a node
(** [push_head t v] prepends [v] and returns its node. *)

val push_tail : 'a t -> 'a -> 'a node
(** [push_tail t v] appends [v] and returns its node. *)

val remove : 'a t -> 'a node -> unit
(** [remove t n] unlinks [n] from [t].
    @raise Invalid_argument if [n] is not on [t]. *)

val pop_head : 'a t -> 'a option
(** [pop_head t] removes and returns the head value, if any. *)

val pop_tail : 'a t -> 'a option
(** [pop_tail t] removes and returns the tail value, if any. *)

val peek_head : 'a t -> 'a option
val peek_tail : 'a t -> 'a option

val head_node : 'a t -> 'a node option
val next_node : 'a node -> 'a node option

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] head-to-tail. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list

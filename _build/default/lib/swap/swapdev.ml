type t = {
  map : Swapmap.t;
  disk : Sim.Disk.t;
  page_size : int;
  store : (int, bytes) Hashtbl.t;
  stats : Sim.Stats.t;
}

let create ~nslots ~page_size ~clock ~costs ~stats =
  {
    map = Swapmap.create ~nslots;
    disk = Sim.Disk.create ~clock ~costs ~stats;
    page_size;
    store = Hashtbl.create 256;
    stats;
  }

let capacity t = Swapmap.capacity t.map
let slots_in_use t = Swapmap.in_use t.map
let disk t = t.disk

let alloc_slots t ~n =
  let r = Swapmap.alloc t.map ~n in
  (match r with
  | Some _ ->
      t.stats.Sim.Stats.swap_slots_allocated <-
        t.stats.Sim.Stats.swap_slots_allocated + n
  | None -> ());
  r

let free_slots t ~slot ~n =
  Swapmap.free t.map ~slot ~n;
  for i = slot to slot + n - 1 do
    Hashtbl.remove t.store i
  done;
  t.stats.Sim.Stats.swap_slots_freed <- t.stats.Sim.Stats.swap_slots_freed + n

let write_cluster t ~slot ~pages =
  let n = List.length pages in
  if n = 0 then invalid_arg "Swapdev.write_cluster: no pages";
  List.iteri
    (fun i (page : Physmem.Page.t) ->
      let s = slot + i in
      if not (Swapmap.is_allocated t.map ~slot:s) then
        invalid_arg "Swapdev.write_cluster: slot not allocated";
      Hashtbl.replace t.store s (Bytes.copy page.data);
      page.dirty <- false)
    pages;
  Sim.Disk.write t.disk ~npages:n;
  t.stats.Sim.Stats.pageouts <- t.stats.Sim.Stats.pageouts + n

let read_slot t ~slot ~dst =
  match Hashtbl.find_opt t.store slot with
  | None -> invalid_arg "Swapdev.read_slot: slot holds no data"
  | Some data ->
      Bytes.blit data 0 dst.Physmem.Page.data 0 t.page_size;
      Sim.Disk.read t.disk ~npages:1;
      dst.Physmem.Page.dirty <- false;
      t.stats.Sim.Stats.pageins <- t.stats.Sim.Stats.pageins + 1

let read_cluster t ~slot ~dsts =
  let n = List.length dsts in
  if n = 0 then invalid_arg "Swapdev.read_cluster: no pages";
  List.iteri
    (fun i (dst : Physmem.Page.t) ->
      match Hashtbl.find_opt t.store (slot + i) with
      | None -> invalid_arg "Swapdev.read_cluster: slot holds no data"
      | Some data ->
          Bytes.blit data 0 dst.Physmem.Page.data 0 t.page_size;
          dst.Physmem.Page.dirty <- false)
    dsts;
  Sim.Disk.read t.disk ~npages:n;
  t.stats.Sim.Stats.pageins <- t.stats.Sim.Stats.pageins + n

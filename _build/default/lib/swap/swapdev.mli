(** The swap device: slot allocation plus actual paging I/O.

    Page contents written out are retained per-slot, so a later pagein
    restores the exact bytes — pageout/pagein is validated for data
    correctness, not just accounting. *)

type t

val create :
  nslots:int ->
  page_size:int ->
  clock:Sim.Simclock.t ->
  costs:Sim.Cost_model.t ->
  stats:Sim.Stats.t ->
  t

val capacity : t -> int
val slots_in_use : t -> int

val alloc_slots : t -> n:int -> int option
(** Reserve [n] contiguous slots (no I/O yet). *)

val free_slots : t -> slot:int -> n:int -> unit
(** Release slots and discard their stored contents. *)

val write_cluster : t -> slot:int -> pages:Physmem.Page.t list -> unit
(** Write the pages to consecutive slots starting at [slot] as a single
    I/O operation (this is UVM's clustered pageout: one seek, n transfers).
    Marks the pages clean. *)

val read_slot : t -> slot:int -> dst:Physmem.Page.t -> unit
(** Page in one slot (one I/O operation).
    @raise Invalid_argument if the slot holds no data. *)

val read_cluster : t -> slot:int -> dsts:Physmem.Page.t list -> unit
(** Page in consecutive slots in one I/O operation. *)

val disk : t -> Sim.Disk.t

(** Swap-slot allocator.

    Slots are numbered from 1 ([0] means "no swap location", as in UVM's
    [an_swslot = 0]).  Supports contiguous multi-slot allocation, which is
    what lets UVM's pagedaemon *reassign* scattered dirty anonymous pages to
    one contiguous range and push them out in a single I/O (paper §6). *)

type t

val create : nslots:int -> t
val capacity : t -> int

val in_use : t -> int
(** Number of slots currently allocated. *)

val alloc : t -> n:int -> int option
(** [alloc t ~n] finds [n] contiguous free slots, first-fit from a rotating
    hint.  Returns the first slot, or [None] if no run of [n] exists. *)

val free : t -> slot:int -> n:int -> unit
(** Release [n] slots starting at [slot].
    @raise Invalid_argument on double free or out-of-range slots. *)

val is_allocated : t -> slot:int -> bool

type t = {
  nslots : int;
  used : bool array; (* index 0 unused; slots are 1..nslots *)
  mutable hint : int;
  mutable in_use : int;
}

let create ~nslots =
  if nslots < 1 then invalid_arg "Swapmap.create: nslots must be >= 1";
  { nslots; used = Array.make (nslots + 1) false; hint = 1; in_use = 0 }

let capacity t = t.nslots
let in_use t = t.in_use

let run_free_at t start n =
  let rec check i = i >= n || ((not t.used.(start + i)) && check (i + 1)) in
  start + n - 1 <= t.nslots && check 0

let alloc t ~n =
  if n < 1 then invalid_arg "Swapmap.alloc: n must be >= 1";
  if t.in_use + n > t.nslots then None
  else begin
    (* First fit, scanning from the hint and wrapping once. *)
    let found = ref None in
    let pos = ref t.hint in
    let scanned = ref 0 in
    while !found = None && !scanned <= t.nslots do
      if !pos + n - 1 > t.nslots then begin
        scanned := !scanned + (t.nslots - !pos + 1);
        pos := 1
      end
      else if run_free_at t !pos n then found := Some !pos
      else begin
        incr pos;
        incr scanned
      end
    done;
    match !found with
    | None -> None
    | Some slot ->
        for i = slot to slot + n - 1 do
          t.used.(i) <- true
        done;
        t.in_use <- t.in_use + n;
        t.hint <- (if slot + n > t.nslots then 1 else slot + n);
        Some slot
  end

let free t ~slot ~n =
  if slot < 1 || slot + n - 1 > t.nslots then
    invalid_arg "Swapmap.free: slot range out of bounds";
  for i = slot to slot + n - 1 do
    if not t.used.(i) then invalid_arg "Swapmap.free: slot not allocated";
    t.used.(i) <- false
  done;
  t.in_use <- t.in_use - n

let is_allocated t ~slot =
  slot >= 1 && slot <= t.nslots && t.used.(slot)

lib/swap/swapdev.mli: Physmem Sim

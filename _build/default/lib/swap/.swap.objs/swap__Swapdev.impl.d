lib/swap/swapdev.ml: Bytes Hashtbl List Physmem Sim Swapmap

lib/swap/swapmap.ml: Array

lib/swap/swapmap.mli:

type tag = ..
type tag += No_owner

type queue = Q_none | Q_free | Q_active | Q_inactive

type t = {
  id : int;
  data : bytes;
  mutable dirty : bool;
  mutable busy : bool;
  mutable wire_count : int;
  mutable loan_count : int;
  mutable owner : tag;
  mutable owner_offset : int;
  mutable queue : queue;
  mutable node : t Sim.Dlist.node option;
  mutable referenced : bool;
}

let is_free t = t.queue = Q_free
let is_wired t = t.wire_count > 0
let is_loaned t = t.loan_count > 0

let queue_name = function
  | Q_none -> "none"
  | Q_free -> "free"
  | Q_active -> "active"
  | Q_inactive -> "inactive"

let pp ppf t =
  Format.fprintf ppf "page#%d{q=%s wire=%d loan=%d dirty=%b}" t.id
    (queue_name t.queue) t.wire_count t.loan_count t.dirty

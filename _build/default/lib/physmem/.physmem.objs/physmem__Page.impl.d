lib/physmem/page.ml: Format Sim

lib/physmem/physmem.ml: Bytes Fun Page Sim

lib/physmem/page.mli: Format Sim

lib/physmem/physmem.mli: Page Sim

(** Small helpers for printing paper-style tables and series. *)

let hr () = print_endline (String.make 72 '-')

let title fmt =
  Printf.ksprintf
    (fun s ->
      hr ();
      print_endline s;
      hr ())
    fmt

let row3 label a b = Printf.printf "%-34s %12s %12s\n" label a b
let row4 label a b c = Printf.printf "%-26s %12s %12s %12s\n" label a b c

let seconds us = Printf.sprintf "%.4f s" (us /. 1e6)
let micros us = Printf.sprintf "%.1f us" us

let ratio bsd uvm =
  if uvm = 0.0 then "-" else Printf.sprintf "%.2fx" (bsd /. uvm)

lib/experiments/report.ml: Printf String

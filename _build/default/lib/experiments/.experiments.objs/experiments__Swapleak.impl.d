lib/experiments/swapleak.ml: Bsdvm List Pmap Report Uvm Vfs Vmiface

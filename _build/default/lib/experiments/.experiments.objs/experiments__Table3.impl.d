lib/experiments/table3.ml: Bsdvm List Pmap Report Sim Uvm Vfs Vmiface

lib/experiments/table1.ml: Bsdvm List Oslayer Report Uvm Vmiface

lib/experiments/datamove.ml: List Pmap Printf Report Sim Uvm Vmiface

lib/experiments/fig6.ml: Bsdvm List Pmap Report Sim Uvm Vmiface

lib/experiments/fig5.ml: Bsdvm List Pmap Report Sim Uvm Vmiface

lib/experiments/fig2.ml: Bsdvm List Pmap Printf Report Sim Uvm Vfs Vmiface

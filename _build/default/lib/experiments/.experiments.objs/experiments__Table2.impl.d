lib/experiments/table2.ml: Bsdvm List Oslayer Report Sim Uvm Vmiface

(** A catalog of program images sized after a late-90s NetBSD/i386 userland.

    Sizes are in 4 KB pages.  [startup_sysctls] models the sysctl calls
    issued by crt0/libc during startup (each temporarily wires a buffer —
    fragmenting the map under BSD VM, paper §3.2); dynamically linked
    programs also map the shared objects in [libs] and pay the runtime
    linker's extra startup work. *)

type shared_lib = {
  lib_name : string;
  lib_text : int;
  lib_data : int;
  lib_bss : int;
}

type t = {
  name : string;
  text_pages : int;
  data_pages : int;
  bss_pages : int;
  stack_pages : int;
  heap_pages : int;
  libs : shared_lib list;
  startup_sysctls : int;
  work_pages : int;  (** heap working set written during execution *)
}

let libc = { lib_name = "/usr/lib/libc.so"; lib_text = 120; lib_data = 8; lib_bss = 6 }
let ld_so = { lib_name = "/usr/libexec/ld.so"; lib_text = 16; lib_data = 2; lib_bss = 1 }
let libutil = { lib_name = "/usr/lib/libutil.so"; lib_text = 8; lib_data = 1; lib_bss = 1 }
let libx11 = { lib_name = "/usr/lib/libX11.so"; lib_text = 180; lib_data = 10; lib_bss = 4 }
let libxt = { lib_name = "/usr/lib/libXt.so"; lib_text = 90; lib_data = 6; lib_bss = 3 }

let static ?(work = 4) name ~text ~data ~bss =
  {
    name;
    text_pages = text;
    data_pages = data;
    bss_pages = bss;
    stack_pages = 4;
    heap_pages = 4;
    libs = [];
    startup_sysctls = 1;
    work_pages = work;
  }

let dynamic ?(work = 4) name ~text ~data ~bss ?(libs = [ ld_so; libc ]) () =
  {
    name;
    text_pages = text;
    data_pages = data;
    bss_pages = bss;
    stack_pages = 4;
    heap_pages = 4;
    libs;
    startup_sysctls = 3;
    work_pages = work;
  }

(* The two programs Table 1 names. *)
let cat = static "/bin/cat" ~text:12 ~data:2 ~bss:1
let od = dynamic "/usr/bin/od" ~text:8 ~data:2 ~bss:1 ()

(* Boot-time processes. *)
let init = static "/sbin/init" ~text:20 ~data:3 ~bss:2
let sh = static "/bin/sh" ~text:40 ~data:4 ~bss:3
let getty = dynamic "/usr/libexec/getty" ~text:6 ~data:1 ~bss:1 ()
let syslogd = dynamic "/usr/sbin/syslogd" ~text:12 ~data:2 ~bss:2 ()
let cron = dynamic "/usr/sbin/cron" ~text:10 ~data:2 ~bss:1 ()
let inetd = dynamic "/usr/sbin/inetd" ~text:12 ~data:2 ~bss:1 ()
let sendmail = dynamic "/usr/sbin/sendmail" ~text:110 ~data:8 ~bss:6 ()
let nfsiod = static "/sbin/nfsiod" ~text:4 ~data:1 ~bss:1
let update = static "/sbin/update" ~text:3 ~data:1 ~bss:1
let mount_prog = static "/sbin/mount" ~text:10 ~data:2 ~bss:1
let ifconfig = static "/sbin/ifconfig" ~text:8 ~data:2 ~bss:1
let rc_script = static "/bin/rc-sh" ~text:40 ~data:4 ~bss:3

(* X11 session processes (the "starting X11 (9 processes)" row). *)
let xserver =
  dynamic "/usr/X11R6/bin/X" ~text:450 ~data:40 ~bss:30
    ~libs:[ ld_so; libc; libutil ] ()

let xterm =
  dynamic "/usr/X11R6/bin/xterm" ~text:60 ~data:6 ~bss:4
    ~libs:[ ld_so; libc; libxt; libx11 ] ()

let xclock =
  dynamic "/usr/X11R6/bin/xclock" ~text:12 ~data:2 ~bss:1
    ~libs:[ ld_so; libc; libxt; libx11 ] ()

let twm =
  dynamic "/usr/X11R6/bin/twm" ~text:50 ~data:5 ~bss:3
    ~libs:[ ld_so; libc; libx11 ] ()

let xinit = dynamic "/usr/X11R6/bin/xinit" ~text:6 ~data:1 ~bss:1 ()

(* Commands whose fault counts Table 2 reports, with text sizes scaled to
   the observed 1999 fault counts. *)
let ls = dynamic ~work:8 "/bin/ls" ~text:8 ~data:2 ~bss:1 ()
let finger = dynamic ~work:30 "/usr/bin/finger" ~text:52 ~data:4 ~bss:2 ~libs:[ ld_so; libc; libutil ] ()
(* cc is really a pipeline (cpp/cc1/as/ld); its footprint here is the
   pipeline's combined text. *)
let cc = dynamic ~work:260 "/usr/bin/cc" ~text:640 ~data:40 ~bss:24 ()
let man = dynamic ~work:25 "/usr/bin/man" ~text:38 ~data:4 ~bss:2 ()
let newaliases = dynamic ~work:60 "/usr/sbin/newaliases" ~text:100 ~data:10 ~bss:6 ()

let total_image_pages p =
  p.text_pages + p.data_pages
  + List.fold_left
      (fun acc l -> acc + l.lib_text + l.lib_data)
      0 p.libs

lib/oslayer/programs.ml: List

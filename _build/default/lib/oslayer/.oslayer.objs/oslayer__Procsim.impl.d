lib/oslayer/procsim.ml: Array List Pmap Programs Trace Vfs Vmiface

lib/oslayer/trace.ml: Array Fun Hashtbl List Programs Sim Vmiface

(** Access-trace generation for the Table 2 fault-count experiment.

    A command's execution is modelled as a mix of sequential instruction
    runs (loops, straight-line code) and isolated jumps (calls, branchy
    code) over its text and library text, plus writes to data/bss/stack.
    The mix is deterministic per command (seeded by the program name), so
    both VM systems replay the identical trace; UVM's fault-ahead window
    pays off exactly on the sequential portion, as the paper's Table 2
    note explains ("this mechanism only works for resident pages"). *)

type seg_id = Seg_text | Seg_data | Seg_bss | Seg_stack | Seg_heap | Seg_lib of int

type event = seg_id * int * Vmiface.Vmtypes.access

(* Split [0, n) into runs: [single_fraction] of the pages are visited as
   isolated single-page accesses, the rest in sequential runs of 4-7
   pages; run order is shuffled. *)
let coverage_runs rng ~n ~single_fraction =
  let runs = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let len =
      if Sim.Rng.float rng 1.0 < single_fraction then 1
      else 4 + Sim.Rng.int rng 4
    in
    let len = min len (n - !pos) in
    runs := (!pos, len) :: !runs;
    pos := !pos + len
  done;
  let arr = Array.of_list !runs in
  Sim.Rng.shuffle rng arr;
  arr

let text_sweep rng seg ~pages ~single_fraction acc =
  Array.fold_left
    (fun acc (start, len) ->
      let acc = ref acc in
      for p = start to start + len - 1 do
        acc := (seg, p, Vmiface.Vmtypes.Read) :: !acc
      done;
      !acc)
    acc
    (coverage_runs rng ~n:pages ~single_fraction)

(** The full trace of one command execution. *)
let command_trace ?(single_fraction = 0.8) (prog : Programs.t) =
  let rng = Sim.Rng.create ~seed:(Hashtbl.hash prog.Programs.name) in
  let acc = [] in
  (* Text: own image plus each shared library's text. *)
  let acc =
    text_sweep rng Seg_text ~pages:prog.Programs.text_pages ~single_fraction acc
  in
  let acc =
    List.fold_left
      (fun acc (i, (lib : Programs.shared_lib)) ->
        (* Only part of a library's text is exercised by one command. *)
        let used = max 1 (lib.Programs.lib_text / 3) in
        text_sweep rng (Seg_lib i) ~pages:used ~single_fraction acc)
      acc
      (List.mapi (fun i l -> (i, l)) prog.Programs.libs)
  in
  (* Data: initialised data is read and partly written. *)
  let acc =
    List.fold_left
      (fun acc p ->
        let acc = (Seg_data, p, Vmiface.Vmtypes.Read) :: acc in
        if Sim.Rng.float rng 1.0 < 0.6 then
          (Seg_data, p, Vmiface.Vmtypes.Write) :: acc
        else acc)
      acc
      (List.init prog.Programs.data_pages Fun.id)
  in
  (* Bss and stack: written. *)
  let acc =
    List.fold_left
      (fun acc p -> (Seg_bss, p, Vmiface.Vmtypes.Write) :: acc)
      acc
      (List.init prog.Programs.bss_pages Fun.id)
  in
  let acc = (Seg_stack, 0, Vmiface.Vmtypes.Write) :: acc in
  (* Heap working set: zero-fill write faults, which fault-ahead cannot
     help with in either system (no resident data to pre-map). *)
  let acc =
    List.fold_left
      (fun acc p -> (Seg_heap, p, Vmiface.Vmtypes.Write) :: acc)
      acc
      (List.init prog.Programs.work_pages Fun.id)
  in
  List.rev acc

(** uvm_sim — reproduce the tables and figures of "The UVM Virtual Memory
    System" (Cranor & Parulkar, USENIX 1999) on the simulated substrate.

    Each subcommand regenerates one paper artifact, comparing UVM with the
    BSD VM baseline on an identical simulated machine. *)

open Cmdliner

let experiments =
  [
    ("table1", "Table 1: allocated map entries", Experiments.Table1.print);
    ("table2", "Table 2: page fault counts", Experiments.Table2.print);
    ("table3", "Table 3: single-page map-fault-unmap time", Experiments.Table3.print);
    ("fig2", "Figure 2: object cache effect on file access", Experiments.Fig2.print);
    ("fig5", "Figure 5: anonymous memory allocation time", Experiments.Fig5.print);
    ("fig6", "Figure 6: fork+wait overhead", Experiments.Fig6.print);
    ("datamove", "Section 7: loanout/transfer/mexp vs copy", Experiments.Datamove.print);
    ("swapleak", "Section 5.3: swap leak demonstration", Experiments.Swapleak.print);
  ]

let run_all () = List.iter (fun (_, _, f) -> f ()) experiments

let cmd_of (name, doc, f) =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence")
    Term.(const run_all $ const ())

let () =
  let info =
    Cmd.info "uvm_sim" ~version:"1.0"
      ~doc:"Reproduction harness for the UVM virtual memory system paper"
  in
  exit (Cmd.eval (Cmd.group info (all_cmd :: List.map cmd_of experiments)))
